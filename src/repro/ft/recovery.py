"""Rollback-recovery orchestration: the fault-tolerant run.

:class:`FTRun` owns everything that *survives* a failure — the network, the
checkpoint servers, the local image store, the statistics — and drives the
kill/rollback/restart cycle over successive :class:`~repro.mpi.job.MPIJob`
incarnations:

1. a failure surfaces as an unexpected socket closure (the job's failure
   listener fires);
2. every process of the job is killed and the active (uncommitted) wave is
   abandoned;
3. the launcher respawns the processes (ssh cost, spare-node placement when
   a whole machine died);
4. each rank reloads the image of the last *committed* wave — from its local
   disk when it restarts on the same machine, otherwise streamed back from
   its checkpoint server;
5. for Vcl, the daemon replays the wave's logged in-transit messages into
   the matching engine;
6. a fresh protocol instance installs and the wave timer re-arms.

The launcher is pluggable; :mod:`repro.runtime` provides the paper's two
environments (the MPICH-V dispatcher and the MPICH2 FTPM) with their spawn
costs and scalability limits.  The default :class:`InstantLauncher` starts
processes with no cost, for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.ft.failure import FailureInjector
from repro.ft.image import CheckpointImage
from repro.ft.membership import MembershipTracker
from repro.ft.protocol import FTStats, LocalImageStore
from repro.ft.server import CheckpointServer, assign_replicas, assign_servers
from repro.mpi.job import MPIJob
from repro.net.topology import BaseNetwork, Endpoint

__all__ = ["FTRun", "InstantLauncher", "FetchPolicy", "StorageUnrecoverableError"]

_CONTROL_BYTES = 64.0


class StorageUnrecoverableError(RuntimeError):
    """No complete replica set of any committed wave survives.

    Raised by recovery when every restore candidate — the newest committed
    wave and every older retained one — is missing at least one rank's
    verifiable image on every surviving replica and on local disk.  The
    chaos runner classifies it as the ``storage-unrecoverable`` verdict;
    without it the run would wedge waiting for a fetch that can never
    complete.
    """


@dataclass(frozen=True)
class FetchPolicy:
    """Retry policy for remote image fetches at restart.

    A fetch sweeps the rank's replicas in assignment order; after a full
    sweep fails, it backs off exponentially (``backoff_base *
    backoff_factor**round``) with multiplicative jitter drawn from a
    dedicated named RNG stream, so retry schedules are deterministic per
    seed and never synchronize across ranks.  ``max_rounds`` sweeps total.
    """

    max_rounds: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.backoff_base < 0 or self.jitter < 0 or self.backoff_factor < 1:
            raise ValueError("invalid backoff parameters")


class InstantLauncher:
    """Zero-cost launcher used by tests; real ones live in repro.runtime."""

    def validate(self, n_ranks: int) -> None:
        """Raise if this environment cannot run ``n_ranks`` processes."""

    def fd_budget(self) -> Dict[str, int]:
        """Descriptor-budget facts for the runtime.validated trace record
        (empty when this launcher has no file-descriptor wall)."""
        return {}

    def spawn_delays(self, n_ranks: int) -> List[float]:
        """Per-rank start delays for a (re)launch."""
        return [0.0] * n_ranks

    def respawn_lead_time(self) -> float:
        """Fixed cost before respawning begins (signalling, cleanup)."""
        return 0.0


class FTRun:
    """One fault-tolerant application execution, across failures."""

    def __init__(
        self,
        sim: "Simulator",
        net: BaseNetwork,
        endpoints: Sequence[Endpoint],
        app_factory: Callable,
        channel_cls: type,
        protocol_factory: Optional[Callable[[MPIJob, "FTRun"], "BaseProtocol"]],
        servers: Sequence[CheckpointServer],
        launcher: Optional[InstantLauncher] = None,
        image_bytes: float = 0.0,
        name: str = "ftrun",
        restart_policy: str = "same-node",
        max_restarts: int = 16,
        replication: int = 1,
        fetch_policy: Optional[FetchPolicy] = None,
        recovery_policy: str = "restart",
        spare_pool: Optional[Sequence] = None,
        malleable_app_factory: Optional[Callable[[int], Callable]] = None,
        suspicion_window: Optional[float] = None,
        membership_ballots: int = 4,
    ) -> None:
        if restart_policy not in ("same-node", "spare"):
            raise ValueError(f"unknown restart policy {restart_policy!r}")
        if recovery_policy not in ("restart", "spare", "shrink"):
            raise ValueError(f"unknown recovery policy {recovery_policy!r}")
        self.sim = sim
        self.net = net
        self.endpoints = list(endpoints)
        self.app_factory = app_factory
        self.channel_cls = channel_cls
        self.protocol_factory = protocol_factory
        self.servers = list(servers)
        self.replication = replication
        self.fetch_policy = fetch_policy if fetch_policy is not None else FetchPolicy()
        self.server_map: Dict[int, CheckpointServer] = (
            assign_servers(len(self.endpoints), self.servers) if self.servers else {}
        )
        #: rank -> ordered K replica servers (index 0 == server_map[rank])
        self.replica_map: Dict[int, List[CheckpointServer]] = (
            assign_replicas(len(self.endpoints), self.servers, replication)
            if self.servers else {}
        )
        self.launcher = launcher if launcher is not None else InstantLauncher()
        self.image_bytes = image_bytes
        self.name = name
        self.restart_policy = restart_policy
        self.max_restarts = max_restarts
        #: survivor-recovery strategy: "restart" (kill everything, the
        #: paper's model), "spare" (promote pre-allocated spare machines,
        #: survivors keep their sockets), "shrink" (survivors renumber and
        #: the app re-decomposes — needs ``malleable_app_factory``)
        self.recovery_policy = recovery_policy
        self.spare_pool = list(spare_pool or [])
        self.malleable_app_factory = malleable_app_factory
        self.suspicion_window = suspicion_window
        self.membership_ballots = membership_ballots

        self.stats = FTStats()
        self.local_images = LocalImageStore()
        self.injector = FailureInjector(sim, net, self.local_images)
        self.completed = sim.event(name=f"{name}:completed")
        self.job: Optional[MPIJob] = None
        self.protocol = None
        self._incarnation = 0
        self._handling_failure = False
        self._started_at = 0.0
        #: live agreement round, set while a survivor recovery is deciding
        #: the failed set; later socket-closure signals fold into it
        self._membership: Optional[MembershipTracker] = None
        self._next_ballot = 1

    def use_site_server_map(self, mapping: Dict[int, CheckpointServer]) -> None:
        """Override the round-robin primary assignment (e.g. Grid'5000 site
        locality) while keeping the replica sets consistent: each rank's
        replicas are its new primary followed by the next servers in ring
        order."""
        self.server_map = dict(mapping)
        order = self.servers
        self.replica_map = {}
        for rank, primary in mapping.items():
            start = order.index(primary)
            self.replica_map[rank] = [
                order[(start + j) % len(order)] for j in range(self.replication)
            ]

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        self.launcher.validate(len(self.endpoints))
        if self.sim.trace.wants("runtime.validated"):
            self.sim.trace.record(
                self.sim.now, "runtime.validated",
                n_ranks=len(self.endpoints),
                launcher=type(self.launcher).__name__,
                **self.launcher.fd_budget(),
            )
        if self.sim.trace.wants("ft.storage_config"):
            self.sim.trace.record(
                self.sim.now, "ft.storage_config",
                replication=self.replication,
                n_servers=len(self.servers),
                gc_keep=max((s.gc_keep for s in self.servers), default=1),
                fetch_rounds=self.fetch_policy.max_rounds,
            )
        self._started_at = self.sim.now
        self._launch(snapshots=None, logs=None, first=True)

    def _launch(self, snapshots, logs, first: bool,
                restored_wave: Optional[int] = None,
                inherited_links=None,
                start_delays: Optional[Sequence[float]] = None,
                seed_state: Optional[Dict] = None) -> None:
        self._incarnation += 1
        job = MPIJob(
            self.sim, self.net, self.endpoints, self.app_factory,
            self.channel_cls, name=f"{self.name}#{self._incarnation}",
            image_bytes=self.image_bytes,
            inherited_links=inherited_links,
        )
        self.job = job
        self._handling_failure = False
        job.failure_listener = self._on_failure_signal
        job.completed.callbacks.append(self._on_job_completed)
        if self.protocol_factory is not None:
            committed = self.committed_wave()
            self.protocol = self.protocol_factory(job, self)
            self.protocol.start_wave = committed + 1
            self.protocol.install()
        if seed_state:
            # shrink: every fresh context learns the iteration the surviving
            # decomposition resumes from (no snapshot restore — the app
            # re-decomposes and recomputes from that boundary)
            for context in job.contexts:
                context.state.update(seed_state)
        delays = (list(start_delays) if start_delays is not None
                  else self.launcher.spawn_delays(len(self.endpoints)))
        job.start(snapshots=snapshots, start_delays=delays)
        if logs:
            # Vcl: the daemons replay the logged in-transit messages; they
            # land after the restored unexpected queues, preserving per-
            # channel FIFO order.
            trace = self.sim.trace
            live = trace.wants("ft.replayed")
            wave = restored_wave if restored_wave is not None else self.committed_wave()
            for rank, packets in logs.items():
                for packet in packets:
                    if live:
                        trace.record(self.sim.now, "ft.replayed", rank=rank,
                                     src=packet.src, seq=packet.seq, wave=wave)
                    job.channels[rank].matching.deliver(packet)

    def _on_job_completed(self, event) -> None:
        if self.completed.triggered:
            return
        if self.protocol is not None:
            self.protocol.detach()
        self.completed.succeed(self.sim.now - self._started_at)

    # ----------------------------------------------------------------- waves
    def committed_wave(self) -> int:
        if not self.servers:
            return 0
        return max(server.committed_wave for server in self.servers)

    # --------------------------------------------------------------- failure
    def schedule_task_kill(self, rank: int, at: float) -> None:
        """Kill ``rank``'s task of whatever incarnation is live at ``at``."""
        self.sim.call_at(at - self.sim.now, self._kill_now, rank, "task")

    def schedule_node_kill(self, rank: int, at: float) -> None:
        self.sim.call_at(at - self.sim.now, self._kill_now, rank, "node")

    def schedule_server_kill(self, index: int, at: float) -> None:
        """Kill checkpoint server ``index`` (machine and all its replicas)
        at simulated time ``at``."""
        self.sim.call_at(at - self.sim.now, self._server_kill_now, index)

    def schedule_image_corrupt(self, server_index: int, rank: int, at: float,
                               wave: Optional[int] = None) -> None:
        """Silently corrupt ``rank``'s stored image on server
        ``server_index`` at time ``at`` (newest committed wave by
        default)."""
        self.sim.call_at(at - self.sim.now, self._corrupt_now,
                         server_index, rank, wave)

    def _kill_now(self, rank: int, kind: str) -> None:
        if self.job is None or self.completed.triggered:
            return
        if kind == "task":
            self.injector.kill_task(self.job, rank)
        else:
            if rank >= len(self.endpoints):
                return  # the job shrank below the victim rank
            # resolve the victim machine through the *current* placement —
            # after a spare promotion the live job's rank may sit on a
            # different node than the incarnation the kill was aimed at
            self.injector.kill_node(self.job, rank,
                                    node=self.endpoints[rank].node)

    def _server_kill_now(self, index: int) -> None:
        if self.completed.triggered or not self.servers:
            return
        self.injector.kill_server(self.servers[index % len(self.servers)])

    def _corrupt_now(self, server_index: int, rank: int,
                     wave: Optional[int]) -> None:
        if self.completed.triggered or not self.servers:
            return
        server = self.servers[server_index % len(self.servers)]
        self.injector.corrupt_image(server, rank, wave)

    def enable_random_failures(
        self,
        mttf: float,
        max_failures: int = 8,
        probe_lead: Optional[float] = None,
        stream: str = "failures",
    ) -> None:
        """Inject task failures as a Poisson process with the given MTTF.

        Failure instants and victims come from a dedicated RNG stream, so two
        runs of the same seed see the *same* failure schedule regardless of
        checkpoint settings — which is what makes checkpoint-period sweeps
        comparable (the MTTF experiment).

        ``probe_lead`` models the paper's proposed proactive trigger: a
        health probe (CPU temperature and the like) notices the impending
        failure ``probe_lead`` seconds ahead and asks the protocol for an
        immediate checkpoint wave.
        """
        if mttf <= 0:
            raise ValueError("mttf must be positive")
        rng = self.sim.rng.stream(f"{self.name}.{stream}")
        self.sim.process(
            self._poisson_failures(rng, mttf, max_failures, probe_lead),
            name=f"{self.name}:poisson",
        )

    def _poisson_failures(self, rng, mttf, max_failures, probe_lead):
        for _ in range(max_failures):
            delay = float(rng.exponential(mttf))
            victim = int(rng.integers(0, len(self.endpoints)))
            if probe_lead is not None and delay > probe_lead:
                self.sim.call_at(delay - probe_lead, self._proactive_trigger)
            yield self.sim.timeout(delay)
            if self.completed.triggered:
                return
            self._kill_now(victim, "task")

    def _proactive_trigger(self) -> None:
        if (self.protocol is not None and not self.protocol.detached
                and not self.completed.triggered):
            self.protocol.request_wave()

    def _on_failure_signal(self, rank: int, peer: Optional[int]) -> None:
        """Unexpected socket closure observed; first signal wins.

        With a survivor policy, the first signal opens a membership
        agreement round and later signals — including those from a
        cascading failure — fold into it as suspicions instead of starting
        competing recoveries.
        """
        if self.completed.triggered:
            return
        if self._handling_failure:
            if self._membership is not None:
                self._membership.observe(rank, peer)
            return
        self._handling_failure = True
        self.stats.failures += 1
        self.sim.trace.record(self.sim.now, "ft.failure_detected",
                              incarnation=self._incarnation)
        if self.recovery_policy == "restart":
            self.sim.process(self._recover(), name=f"{self.name}:recover")
            return
        self._membership = MembershipTracker(
            self.sim, self.job, self._detect_latency(),
            ballot_start=self._next_ballot,
            max_ballots=self.membership_ballots,
            suspicion_window=self.suspicion_window,
        )
        self._membership.observe(rank, peer)
        self.sim.process(self._recover_survivor(), name=f"{self.name}:recover")

    def _detect_latency(self) -> float:
        """Fabric latency used to time suspicion windows and ballots."""
        fabric = getattr(self.net, "fabric", None)
        latency = getattr(fabric, "latency", None)
        return latency if latency is not None else 1e-4

    def _recover(self):
        recovery_start = self.sim.now
        if self.protocol is not None:
            self.protocol.detach()
        job = self.job
        job.kill()

        if self.stats.restarts >= self.max_restarts:
            raise RuntimeError(f"{self.name}: exceeded {self.max_restarts} restarts")

        committed = self.committed_wave()
        yield self.sim.timeout(self.launcher.respawn_lead_time())
        self._replace_dead_nodes()

        snapshots, logs, restored_wave = \
            yield from self._restore_images(committed)
        if any(not ep.node.alive for ep in self.endpoints):
            # a second kill landed while images were streaming back —
            # re-place before relaunching onto a dead machine
            self._replace_dead_nodes()
        self.stats.restarts += 1
        self.stats.recovery_seconds += self.sim.now - recovery_start
        self.sim.trace.record(self.sim.now, "ft.restarted", wave=restored_wave,
                              incarnation=self._incarnation)
        if self.sim.metrics is not None:
            self.sim.metrics.observe("ft.recovery_seconds",
                                     self.sim.now - recovery_start,
                                     wave=restored_wave)
        self._launch(snapshots=snapshots, logs=logs, first=False,
                     restored_wave=restored_wave)

    def _restore_images(self, committed: int, via_map=None):
        """Generator: load the newest fully-restorable committed wave.

        Returns ``(snapshots, logs, restored_wave)`` — all None/0 when
        nothing was ever committed.  Raises
        :class:`StorageUnrecoverableError` when every candidate wave is
        damaged beyond reconstruction.  ``via_map`` substitutes fetch
        endpoints per rank (shrink: a survivor streams a dead rank's image).
        """
        snapshots: Optional[List] = None
        logs: Optional[Dict[int, list]] = None
        restored_wave = 0
        if committed > 0:
            images: Optional[List[CheckpointImage]] = None
            for candidate in self._restorable_candidates(committed):
                images = yield from self._fetch_wave(candidate, via_map=via_map)
                if images is not None:
                    restored_wave = candidate
                    break
                # Wave ``candidate`` is damaged beyond reconstruction —
                # fall back to the next-newest retained commit.
                self.stats.wave_fallbacks += 1
                self.sim.trace.record(self.sim.now, "ft.wave_fallback",
                                      wave=candidate,
                                      incarnation=self._incarnation)
            if images is None:
                self.sim.trace.record(self.sim.now, "ft.storage_unrecoverable",
                                      committed=committed,
                                      incarnation=self._incarnation)
                raise StorageUnrecoverableError(
                    f"{self.name}: no complete replica set of any committed "
                    f"wave <= {committed} survives")
            snapshots = [image.snapshot for image in images]
            logs = {
                rank: image.logged_messages
                for rank, image in enumerate(images)
                if image.logged_messages
            }
        return snapshots, logs, restored_wave

    # ------------------------------------------------- survivor-based recovery
    def _recover_survivor(self):
        """ULFM-style recovery: agree on the failed set, then apply the
        spare/shrink policy; degrade to a full restart when the policy
        cannot proceed (never hang)."""
        policy = self.recovery_policy
        started_at = self.sim.now
        marks: Dict[str, float] = {}
        if self.protocol is not None:
            self.protocol.detach()
        job = self.job

        if self.stats.restarts >= self.max_restarts:
            raise RuntimeError(f"{self.name}: exceeded {self.max_restarts} restarts")

        tracker = self._membership
        failed, survivors, ballot = yield from tracker.agree()
        self._membership = None
        self._next_ballot = ballot + 1
        marks["detect"] = tracker.window_closed_at
        marks["agree"] = self.sim.now
        committed = self.committed_wave()
        self.sim.trace.record(
            self.sim.now, "ft.recovery_begin", policy=policy, ballot=ballot,
            failed=failed, n_ranks=len(self.endpoints), committed=committed,
            incarnation=self._incarnation)

        # Survivor sockets outlive the dying incarnation: detach them before
        # the kill breaks everything, then drop whatever the dead epoch left
        # on the wire.  (Shrink renumbers the ranks, which invalidates the
        # cached pair addressing — it reconnects lazily instead.)
        inherited = job.harvest_links(survivors) if policy == "spare" else {}
        job.kill()
        for end_lo, _end_hi in inherited.values():
            end_lo.connection.flush()

        if policy == "shrink":
            reason = yield from self._shrink_restart(
                failed, survivors, committed, marks, started_at)
        else:
            reason = yield from self._spare_restart(
                failed, committed, inherited, marks, started_at)
        if reason is None:
            return

        # ---- graceful degradation: fall back to the paper's full restart
        self.stats.policy_degradations += 1
        self.sim.trace.record(self.sim.now, "ft.recovery_degraded",
                              policy=policy, reason=reason,
                              incarnation=self._incarnation)
        for end_lo, _end_hi in inherited.values():
            end_lo.connection.break_()
        yield self.sim.timeout(self.launcher.respawn_lead_time())
        for endpoint in self.endpoints:
            if not endpoint.node.alive:
                endpoint.node.restore()  # reboot in place; images are gone
        marks["promote"] = self.sim.now
        snapshots, logs, restored_wave = \
            yield from self._restore_images(committed)
        for endpoint in self.endpoints:
            if not endpoint.node.alive:
                endpoint.node.restore()  # casualty during the restore itself
        self._finish_recovery(policy, restored_wave, snapshots, logs,
                              marks, started_at)

    def _spare_restart(self, failed, committed, inherited, marks, started_at):
        """Generator: promote spares for dead machines, restore, relaunch.

        Returns None on success, or a degradation reason.  Loops when a
        cascading kill lands while images are streaming back — every loop
        re-promotes for the new casualties, bounded so exhaustion or
        relentless kills degrade instead of spinning.
        """
        promoted: List[int] = []
        for _attempt in range(3):
            newly, exhausted = self._promote_spares()
            promoted.extend(newly)
            if exhausted:
                return "spare-pool-exhausted"
            marks["promote"] = self.sim.now
            try:
                snapshots, logs, restored_wave = \
                    yield from self._restore_images(committed)
            except StorageUnrecoverableError:
                if any(not ep.node.alive for ep in self.endpoints):
                    continue  # the fetcher died, not the storage: re-place
                raise
            if any(not ep.node.alive for ep in self.endpoints):
                continue  # a kill landed mid-restore; promote replacements
            if restored_wave > 0:
                for rank in sorted(set(promoted)):
                    self.sim.trace.record(
                        self.sim.now, "ft.spare_restore", rank=rank,
                        wave=restored_wave,
                        node=self.endpoints[rank].node.name)
            links = {key: ends for key, ends in inherited.items()
                     if not ends[0].connection.broken}
            # survivors are already resident: only the failed ranks pay the
            # launcher's spawn cost
            delays = [0.0] * len(self.endpoints)
            if failed:
                spawn = self.launcher.spawn_delays(len(failed))
                for position, rank in enumerate(sorted(failed)):
                    if rank < len(delays):
                        delays[rank] = spawn[position]
            self._finish_recovery("spare", restored_wave, snapshots, logs,
                                  marks, started_at, delays=delays,
                                  inherited_links=links)
            return None
        return "cascading-failures"

    def _promote_spares(self):
        """Move endpoints off dead machines onto pre-allocated spares.

        Returns ``(promoted ranks, exhausted)`` — exhausted means a dead
        endpoint remains with no live spare left to host it.
        """
        promoted: List[int] = []
        for index, endpoint in enumerate(self.endpoints):
            if endpoint.node.alive:
                continue
            while self.spare_pool and not self.spare_pool[0].alive:
                self.spare_pool.pop(0)
            if not self.spare_pool:
                return promoted, True
            node = self.spare_pool.pop(0)
            node.service = False  # now hosts an MPI rank
            self.endpoints[index] = Endpoint(node, 0)
            self.stats.spares_promoted += 1
            self.sim.trace.record(self.sim.now, "ft.promoted", rank=index,
                                  node=node.name,
                                  incarnation=self._incarnation)
            promoted.append(index)
        return promoted, False

    def _shrink_restart(self, failed, survivors, committed, marks, started_at):
        """Generator: renumber the survivors and re-decompose the app.

        Returns None on success, or a degradation reason.  The survivors
        restart the (malleable) application over the shrunken communicator
        from the last iteration boundary every committed image had reached.
        """
        if self.malleable_app_factory is None:
            return "app-not-malleable"
        old_size = len(self.endpoints)
        live = [r for r in survivors if self.endpoints[r].node.alive]
        if not live:
            return "no-survivors"
        # dead machines cannot stream their own images back: a survivor
        # fetches each dead rank's shard (the redistribution cost)
        dead_ranks = [r for r in range(old_size)
                      if not self.endpoints[r].node.alive]
        via_map = {rank: self.endpoints[live[i % len(live)]]
                   for i, rank in enumerate(dead_ranks)}
        try:
            snapshots, _logs, restored_wave = \
                yield from self._restore_images(committed, via_map=via_map)
        except StorageUnrecoverableError:
            if any(not self.endpoints[r].node.alive for r in live):
                return "casualty-during-restore"  # fetcher died, not storage
            raise
        live = [r for r in live if self.endpoints[r].node.alive]
        if not live:
            return "no-survivors"
        marks["promote"] = self.sim.now
        resume = 0
        if snapshots is not None:
            resume = min(snapshot.state.get("iteration", 0)
                         for snapshot in snapshots)
        new_size = len(live)
        live_set = set(live)
        dropped = tuple(r for r in range(old_size) if r not in live_set)
        self.endpoints = [self.endpoints[r] for r in live]
        if self.servers:
            self.server_map = assign_servers(new_size, self.servers)
            self.replica_map = assign_replicas(new_size, self.servers,
                                               self.replication)
        self.app_factory = self.malleable_app_factory(new_size)
        self.stats.shrinks += 1
        self.sim.trace.record(self.sim.now, "ft.shrunk", size=new_size,
                              dropped=dropped, resume_iteration=resume,
                              incarnation=self._incarnation)
        if self.sim.trace.wants("runtime.validated"):
            # the rank count changed: re-announce the world size so monitors
            # keying coverage on n_ranks treat the stream as re-dimensioned
            self.sim.trace.record(self.sim.now, "runtime.validated",
                                  n_ranks=new_size,
                                  launcher=type(self.launcher).__name__,
                                  **self.launcher.fd_budget())
        self._finish_recovery("shrink", restored_wave, None, None,
                              marks, started_at, delays=[0.0] * new_size,
                              seed_state={"resume_iteration": resume})
        return None

    def _finish_recovery(self, policy, restored_wave, snapshots, logs,
                         marks, started_at, delays=None, inherited_links=None,
                         seed_state=None) -> None:
        now = self.sim.now
        self.stats.restarts += 1
        self.stats.recovery_seconds += now - started_at
        self.sim.trace.record(now, "ft.restarted", wave=restored_wave,
                              incarnation=self._incarnation)
        if self.sim.metrics is not None:
            self.sim.metrics.observe("ft.recovery_seconds", now - started_at,
                                     wave=restored_wave, policy=policy)
        self._emit_recovery_phases(policy, marks, started_at)
        self._launch(snapshots=snapshots, logs=logs, first=False,
                     restored_wave=restored_wave,
                     inherited_links=inherited_links, start_delays=delays,
                     seed_state=seed_state)

    def _emit_recovery_phases(self, policy: str, marks: Dict[str, float],
                              started_at: float) -> None:
        """Emit the detect/agree/promote/restore spans tiling this recovery.

        Mirrors the wave-phase emission: marks are clamped monotone so the
        spans always tile ``[started_at, now]`` exactly, whatever order the
        recovery actually visited them in (degraded paths may skip phases —
        those come out zero-length, not missing).
        """
        trace = self.sim.trace
        metrics = self.sim.metrics
        wants = trace.wants("ft.recovery_phase")
        if not wants and metrics is None:
            return
        end = self.sim.now
        prev = started_at
        spans = []
        for phase in ("detect", "agree", "promote"):
            at = min(max(marks.get(phase, prev), prev), end)
            spans.append((phase, prev, at))
            prev = at
        spans.append(("restore", prev, end))
        for phase, start, stop in spans:
            if wants:
                trace.record(end, "ft.recovery_phase", policy=policy,
                             phase=phase, start=start, end=stop,
                             duration=stop - start)
            if metrics is not None:
                metrics.observe("ft.recovery_phase_seconds", stop - start,
                                policy=policy, phase=phase)

    def _replace_dead_nodes(self) -> None:
        """Spare-node policy: move endpoints off dead machines."""
        dead = [i for i, ep in enumerate(self.endpoints) if not ep.node.alive]
        if not dead:
            return
        if self.restart_policy == "same-node":
            # The task died but the machine is fine in the paper's setup; if
            # the whole node was killed, model a reboot.
            for index in dead:
                self.endpoints[index].node.restore()
            return
        used = {ep.node for ep in self.endpoints}
        spares = [n for n in self.net.all_nodes()
                  if n.alive and not n.service and n not in used]
        for index in dead:
            if not spares:
                raise RuntimeError("no spare nodes available for restart")
            self.endpoints[index] = Endpoint(spares.pop(0), 0)

    def _restorable_candidates(self, committed: int) -> List[int]:
        """Committed waves worth a restore attempt, newest first.

        The newest commit is always tried; older retained commits (servers
        with ``gc_keep > 1`` keep them) and waves still present as local
        images are the fallbacks when the newest one is damaged.
        """
        candidates = {committed}
        for server in self.servers:
            if not server.node.alive:
                continue
            for wave in server.committed_waves:
                if 0 < wave <= committed and wave in server.storage:
                    candidates.add(wave)
        for wave in self.local_images.waves():
            if 0 < wave <= committed:
                candidates.add(wave)
        return sorted(candidates, reverse=True)

    def _fetch_wave(self, wave: int, via_map=None):
        """Generator: fetch every rank's image of ``wave``, concurrently.

        All-or-nothing: returns the image list, or None when any rank's
        image could not be recovered from any replica (the wave is not
        fully restorable and a consistent rollback to it is impossible).
        """
        via_map = via_map or {}
        fetchers = [
            self.sim.process(self._fetch_image(rank, wave,
                                               via=via_map.get(rank)),
                             name=f"{self.name}:fetch:r{rank}")
            for rank in range(len(self.endpoints))
        ]
        images = []
        for fetcher in fetchers:
            image = yield fetcher
            images.append(image)
        if any(image is None for image in images):
            return None
        return images

    def _note_fetch_failure(self, rank: int, wave: int, index: int,
                            reason: str) -> None:
        self.stats.fetch_retries += 1
        if self.sim.trace.wants("ft.fetch_failed"):
            self.sim.trace.record(self.sim.now, "ft.fetch_failed", rank=rank,
                                  wave=wave, replica=index, reason=reason)
        if self.sim.metrics is not None:
            self.sim.metrics.count("ft.fetch_failures", 1.0,
                                   rank=rank, reason=reason)

    def _fetch_image(self, rank: int, wave: int, via=None):
        """Generator: load ``rank``'s image of ``wave``, or None.

        Local disk first (same-machine restart); otherwise sweep the rank's
        replicas in assignment order, verifying the checksum of whatever
        comes back, with deterministic exponential backoff + jitter between
        sweeps (:class:`FetchPolicy`).  Returns None once every sweep is
        exhausted or every replica is dead.  ``via`` fetches through another
        machine's endpoint (shrink: a survivor pulls a dead rank's image).
        """
        endpoint = self.endpoints[rank] if via is None else via
        image = self.local_images.get(endpoint.node.name, rank, wave)
        if image is not None:
            yield endpoint.node.disk.read(image.nbytes)
            self.sim.trace.count("ft.restore_local")
            return image
        replicas = self.replica_map.get(rank) or [self.server_map[rank]]
        policy = self.fetch_policy
        rng = None
        for round_no in range(policy.max_rounds):
            for index, server in enumerate(replicas):
                if not server.node.alive:
                    continue
                try:
                    connection = self.net.connect(endpoint, server.endpoint)
                except ConnectionError:
                    # the *fetching* side's machine is gone — a cascading
                    # kill landed mid-recovery; the caller re-places and
                    # retries instead of crashing the recovery process
                    self._note_fetch_failure(rank, wave, index, "connection")
                    continue
                server.serve_connection(connection.end_b)
                end = connection.end_a
                end.send(("fetch", rank, wave), nbytes=_CONTROL_BYTES)
                try:
                    message = yield end.recv()
                except ConnectionError:
                    # replica died mid-fetch
                    self._note_fetch_failure(rank, wave, index, "connection")
                    continue
                connection.break_()
                _kind, image, status = message
                if image is not None and image.verify():
                    self.sim.trace.count("ft.restore_remote")
                    if self.sim.trace.wants("ft.fetch_ok"):
                        self.sim.trace.record(
                            self.sim.now, "ft.fetch_ok", rank=rank, wave=wave,
                            server=server.name, checksum=image.checksum)
                    return image
                self._note_fetch_failure(
                    rank, wave, index, status if image is None else "corrupt")
            if not any(server.node.alive for server in replicas):
                break  # nobody left to answer; backing off cannot help
            if round_no + 1 < policy.max_rounds:
                if rng is None:
                    rng = self.sim.rng.stream(f"{self.name}.fetch.r{rank}")
                delay = (policy.backoff_base
                         * policy.backoff_factor ** round_no
                         * (1.0 + policy.jitter * float(rng.random())))
                if self.sim.trace.wants("ft.fetch_backoff"):
                    self.sim.trace.record(self.sim.now, "ft.fetch_backoff",
                                          rank=rank, wave=wave, round=round_no,
                                          delay=delay)
                if self.sim.metrics is not None:
                    self.sim.metrics.count("ft.fetch_backoff_rounds", 1.0,
                                           rank=rank)
                    self.sim.metrics.count("ft.fetch_backoff_seconds", delay,
                                           rank=rank)
                yield self.sim.timeout(delay)
        return None
