"""Rollback-recovery orchestration: the fault-tolerant run.

:class:`FTRun` owns everything that *survives* a failure — the network, the
checkpoint servers, the local image store, the statistics — and drives the
kill/rollback/restart cycle over successive :class:`~repro.mpi.job.MPIJob`
incarnations:

1. a failure surfaces as an unexpected socket closure (the job's failure
   listener fires);
2. every process of the job is killed and the active (uncommitted) wave is
   abandoned;
3. the launcher respawns the processes (ssh cost, spare-node placement when
   a whole machine died);
4. each rank reloads the image of the last *committed* wave — from its local
   disk when it restarts on the same machine, otherwise streamed back from
   its checkpoint server;
5. for Vcl, the daemon replays the wave's logged in-transit messages into
   the matching engine;
6. a fresh protocol instance installs and the wave timer re-arms.

The launcher is pluggable; :mod:`repro.runtime` provides the paper's two
environments (the MPICH-V dispatcher and the MPICH2 FTPM) with their spawn
costs and scalability limits.  The default :class:`InstantLauncher` starts
processes with no cost, for unit tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.ft.failure import FailureInjector
from repro.ft.image import CheckpointImage
from repro.ft.protocol import FTStats, LocalImageStore
from repro.ft.server import CheckpointServer, assign_servers
from repro.mpi.job import MPIJob
from repro.net.topology import BaseNetwork, Endpoint

__all__ = ["FTRun", "InstantLauncher"]

_CONTROL_BYTES = 64.0


class InstantLauncher:
    """Zero-cost launcher used by tests; real ones live in repro.runtime."""

    def validate(self, n_ranks: int) -> None:
        """Raise if this environment cannot run ``n_ranks`` processes."""

    def fd_budget(self) -> Dict[str, int]:
        """Descriptor-budget facts for the runtime.validated trace record
        (empty when this launcher has no file-descriptor wall)."""
        return {}

    def spawn_delays(self, n_ranks: int) -> List[float]:
        """Per-rank start delays for a (re)launch."""
        return [0.0] * n_ranks

    def respawn_lead_time(self) -> float:
        """Fixed cost before respawning begins (signalling, cleanup)."""
        return 0.0


class FTRun:
    """One fault-tolerant application execution, across failures."""

    def __init__(
        self,
        sim: "Simulator",
        net: BaseNetwork,
        endpoints: Sequence[Endpoint],
        app_factory: Callable,
        channel_cls: type,
        protocol_factory: Optional[Callable[[MPIJob, "FTRun"], "BaseProtocol"]],
        servers: Sequence[CheckpointServer],
        launcher: Optional[InstantLauncher] = None,
        image_bytes: float = 0.0,
        name: str = "ftrun",
        restart_policy: str = "same-node",
        max_restarts: int = 16,
    ) -> None:
        if restart_policy not in ("same-node", "spare"):
            raise ValueError(f"unknown restart policy {restart_policy!r}")
        self.sim = sim
        self.net = net
        self.endpoints = list(endpoints)
        self.app_factory = app_factory
        self.channel_cls = channel_cls
        self.protocol_factory = protocol_factory
        self.servers = list(servers)
        self.server_map: Dict[int, CheckpointServer] = (
            assign_servers(len(self.endpoints), self.servers) if self.servers else {}
        )
        self.launcher = launcher if launcher is not None else InstantLauncher()
        self.image_bytes = image_bytes
        self.name = name
        self.restart_policy = restart_policy
        self.max_restarts = max_restarts

        self.stats = FTStats()
        self.local_images = LocalImageStore()
        self.injector = FailureInjector(sim, net, self.local_images)
        self.completed = sim.event(name=f"{name}:completed")
        self.job: Optional[MPIJob] = None
        self.protocol = None
        self._incarnation = 0
        self._handling_failure = False
        self._started_at = 0.0

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        self.launcher.validate(len(self.endpoints))
        if self.sim.trace.wants("runtime.validated"):
            self.sim.trace.record(
                self.sim.now, "runtime.validated",
                n_ranks=len(self.endpoints),
                launcher=type(self.launcher).__name__,
                **self.launcher.fd_budget(),
            )
        self._started_at = self.sim.now
        self._launch(snapshots=None, logs=None, first=True)

    def _launch(self, snapshots, logs, first: bool) -> None:
        self._incarnation += 1
        job = MPIJob(
            self.sim, self.net, self.endpoints, self.app_factory,
            self.channel_cls, name=f"{self.name}#{self._incarnation}",
            image_bytes=self.image_bytes,
        )
        self.job = job
        self._handling_failure = False
        job.failure_listener = self._on_failure_signal
        job.completed.callbacks.append(self._on_job_completed)
        if self.protocol_factory is not None:
            committed = self.committed_wave()
            self.protocol = self.protocol_factory(job, self)
            self.protocol.start_wave = committed + 1
            self.protocol.install()
        delays = self.launcher.spawn_delays(len(self.endpoints))
        job.start(snapshots=snapshots, start_delays=delays)
        if logs:
            # Vcl: the daemons replay the logged in-transit messages; they
            # land after the restored unexpected queues, preserving per-
            # channel FIFO order.
            trace = self.sim.trace
            live = trace.wants("ft.replayed")
            wave = self.committed_wave()
            for rank, packets in logs.items():
                for packet in packets:
                    if live:
                        trace.record(self.sim.now, "ft.replayed", rank=rank,
                                     src=packet.src, seq=packet.seq, wave=wave)
                    job.channels[rank].matching.deliver(packet)

    def _on_job_completed(self, event) -> None:
        if self.completed.triggered:
            return
        if self.protocol is not None:
            self.protocol.detach()
        self.completed.succeed(self.sim.now - self._started_at)

    # ----------------------------------------------------------------- waves
    def committed_wave(self) -> int:
        if not self.servers:
            return 0
        return max(server.committed_wave for server in self.servers)

    # --------------------------------------------------------------- failure
    def schedule_task_kill(self, rank: int, at: float) -> None:
        """Kill ``rank``'s task of whatever incarnation is live at ``at``."""
        self.sim.call_at(at - self.sim.now, self._kill_now, rank, "task")

    def schedule_node_kill(self, rank: int, at: float) -> None:
        self.sim.call_at(at - self.sim.now, self._kill_now, rank, "node")

    def _kill_now(self, rank: int, kind: str) -> None:
        if self.job is None or self.completed.triggered:
            return
        if kind == "task":
            self.injector.kill_task(self.job, rank)
        else:
            self.injector.kill_node(self.job, rank)

    def enable_random_failures(
        self,
        mttf: float,
        max_failures: int = 8,
        probe_lead: Optional[float] = None,
        stream: str = "failures",
    ) -> None:
        """Inject task failures as a Poisson process with the given MTTF.

        Failure instants and victims come from a dedicated RNG stream, so two
        runs of the same seed see the *same* failure schedule regardless of
        checkpoint settings — which is what makes checkpoint-period sweeps
        comparable (the MTTF experiment).

        ``probe_lead`` models the paper's proposed proactive trigger: a
        health probe (CPU temperature and the like) notices the impending
        failure ``probe_lead`` seconds ahead and asks the protocol for an
        immediate checkpoint wave.
        """
        if mttf <= 0:
            raise ValueError("mttf must be positive")
        rng = self.sim.rng.stream(f"{self.name}.{stream}")
        self.sim.process(
            self._poisson_failures(rng, mttf, max_failures, probe_lead),
            name=f"{self.name}:poisson",
        )

    def _poisson_failures(self, rng, mttf, max_failures, probe_lead):
        for _ in range(max_failures):
            delay = float(rng.exponential(mttf))
            victim = int(rng.integers(0, len(self.endpoints)))
            if probe_lead is not None and delay > probe_lead:
                self.sim.call_at(delay - probe_lead, self._proactive_trigger)
            yield self.sim.timeout(delay)
            if self.completed.triggered:
                return
            self._kill_now(victim, "task")

    def _proactive_trigger(self) -> None:
        if (self.protocol is not None and not self.protocol.detached
                and not self.completed.triggered):
            self.protocol.request_wave()

    def _on_failure_signal(self, rank: int, peer: Optional[int]) -> None:
        """Unexpected socket closure observed; first signal wins."""
        if self._handling_failure or self.completed.triggered:
            return
        self._handling_failure = True
        self.stats.failures += 1
        self.sim.trace.record(self.sim.now, "ft.failure_detected",
                              incarnation=self._incarnation)
        self.sim.process(self._recover(), name=f"{self.name}:recover")

    def _recover(self):
        recovery_start = self.sim.now
        if self.protocol is not None:
            self.protocol.detach()
        job = self.job
        job.kill()

        if self.stats.restarts >= self.max_restarts:
            raise RuntimeError(f"{self.name}: exceeded {self.max_restarts} restarts")

        wave = self.committed_wave()
        yield self.sim.timeout(self.launcher.respawn_lead_time())
        self._replace_dead_nodes()

        snapshots: Optional[List] = None
        logs: Optional[Dict[int, list]] = None
        if wave > 0:
            fetchers = [
                self.sim.process(self._fetch_image(rank, wave),
                                 name=f"{self.name}:fetch:r{rank}")
                for rank in range(len(self.endpoints))
            ]
            images = []
            for fetcher in fetchers:
                image = yield fetcher
                images.append(image)
            snapshots = [image.snapshot for image in images]
            logs = {
                rank: image.logged_messages
                for rank, image in enumerate(images)
                if image.logged_messages
            }
        self.stats.restarts += 1
        self.stats.recovery_seconds += self.sim.now - recovery_start
        self.sim.trace.record(self.sim.now, "ft.restarted", wave=wave,
                              incarnation=self._incarnation)
        self._launch(snapshots=snapshots, logs=logs, first=False)

    def _replace_dead_nodes(self) -> None:
        """Spare-node policy: move endpoints off dead machines."""
        dead = [i for i, ep in enumerate(self.endpoints) if not ep.node.alive]
        if not dead:
            return
        if self.restart_policy == "same-node":
            # The task died but the machine is fine in the paper's setup; if
            # the whole node was killed, model a reboot.
            for index in dead:
                self.endpoints[index].node.restore()
            return
        used = {ep.node for ep in self.endpoints}
        spares = [n for n in self.net.all_nodes()
                  if n.alive and not n.service and n not in used]
        for index in dead:
            if not spares:
                raise RuntimeError("no spare nodes available for restart")
            self.endpoints[index] = Endpoint(spares.pop(0), 0)

    def _fetch_image(self, rank: int, wave: int):
        """Generator: load ``rank``'s image of ``wave`` (local disk first)."""
        endpoint = self.endpoints[rank]
        image = self.local_images.get(endpoint.node.name, rank, wave)
        if image is not None:
            yield endpoint.node.disk.read(image.nbytes)
            self.sim.trace.count("ft.restore_local")
            return image
        server = self.server_map[rank]
        connection = self.net.connect(endpoint, server.endpoint)
        server.serve_connection(connection.end_b)
        end = connection.end_a
        end.send(("fetch", rank, wave), nbytes=_CONTROL_BYTES)
        message = yield end.recv()
        connection.break_()
        _kind, image = message
        if image is None:
            raise RuntimeError(f"server lost rank {rank}'s image for wave {wave}")
        self.sim.trace.count("ft.restore_remote")
        return image
