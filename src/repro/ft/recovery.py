"""Rollback-recovery orchestration: the fault-tolerant run.

:class:`FTRun` owns everything that *survives* a failure — the network, the
checkpoint servers, the local image store, the statistics — and drives the
kill/rollback/restart cycle over successive :class:`~repro.mpi.job.MPIJob`
incarnations:

1. a failure surfaces as an unexpected socket closure (the job's failure
   listener fires);
2. every process of the job is killed and the active (uncommitted) wave is
   abandoned;
3. the launcher respawns the processes (ssh cost, spare-node placement when
   a whole machine died);
4. each rank reloads the image of the last *committed* wave — from its local
   disk when it restarts on the same machine, otherwise streamed back from
   its checkpoint server;
5. for Vcl, the daemon replays the wave's logged in-transit messages into
   the matching engine;
6. a fresh protocol instance installs and the wave timer re-arms.

The launcher is pluggable; :mod:`repro.runtime` provides the paper's two
environments (the MPICH-V dispatcher and the MPICH2 FTPM) with their spawn
costs and scalability limits.  The default :class:`InstantLauncher` starts
processes with no cost, for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.ft.failure import FailureInjector
from repro.ft.image import CheckpointImage
from repro.ft.protocol import FTStats, LocalImageStore
from repro.ft.server import CheckpointServer, assign_replicas, assign_servers
from repro.mpi.job import MPIJob
from repro.net.topology import BaseNetwork, Endpoint

__all__ = ["FTRun", "InstantLauncher", "FetchPolicy", "StorageUnrecoverableError"]

_CONTROL_BYTES = 64.0


class StorageUnrecoverableError(RuntimeError):
    """No complete replica set of any committed wave survives.

    Raised by recovery when every restore candidate — the newest committed
    wave and every older retained one — is missing at least one rank's
    verifiable image on every surviving replica and on local disk.  The
    chaos runner classifies it as the ``storage-unrecoverable`` verdict;
    without it the run would wedge waiting for a fetch that can never
    complete.
    """


@dataclass(frozen=True)
class FetchPolicy:
    """Retry policy for remote image fetches at restart.

    A fetch sweeps the rank's replicas in assignment order; after a full
    sweep fails, it backs off exponentially (``backoff_base *
    backoff_factor**round``) with multiplicative jitter drawn from a
    dedicated named RNG stream, so retry schedules are deterministic per
    seed and never synchronize across ranks.  ``max_rounds`` sweeps total.
    """

    max_rounds: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.backoff_base < 0 or self.jitter < 0 or self.backoff_factor < 1:
            raise ValueError("invalid backoff parameters")


class InstantLauncher:
    """Zero-cost launcher used by tests; real ones live in repro.runtime."""

    def validate(self, n_ranks: int) -> None:
        """Raise if this environment cannot run ``n_ranks`` processes."""

    def fd_budget(self) -> Dict[str, int]:
        """Descriptor-budget facts for the runtime.validated trace record
        (empty when this launcher has no file-descriptor wall)."""
        return {}

    def spawn_delays(self, n_ranks: int) -> List[float]:
        """Per-rank start delays for a (re)launch."""
        return [0.0] * n_ranks

    def respawn_lead_time(self) -> float:
        """Fixed cost before respawning begins (signalling, cleanup)."""
        return 0.0


class FTRun:
    """One fault-tolerant application execution, across failures."""

    def __init__(
        self,
        sim: "Simulator",
        net: BaseNetwork,
        endpoints: Sequence[Endpoint],
        app_factory: Callable,
        channel_cls: type,
        protocol_factory: Optional[Callable[[MPIJob, "FTRun"], "BaseProtocol"]],
        servers: Sequence[CheckpointServer],
        launcher: Optional[InstantLauncher] = None,
        image_bytes: float = 0.0,
        name: str = "ftrun",
        restart_policy: str = "same-node",
        max_restarts: int = 16,
        replication: int = 1,
        fetch_policy: Optional[FetchPolicy] = None,
    ) -> None:
        if restart_policy not in ("same-node", "spare"):
            raise ValueError(f"unknown restart policy {restart_policy!r}")
        self.sim = sim
        self.net = net
        self.endpoints = list(endpoints)
        self.app_factory = app_factory
        self.channel_cls = channel_cls
        self.protocol_factory = protocol_factory
        self.servers = list(servers)
        self.replication = replication
        self.fetch_policy = fetch_policy if fetch_policy is not None else FetchPolicy()
        self.server_map: Dict[int, CheckpointServer] = (
            assign_servers(len(self.endpoints), self.servers) if self.servers else {}
        )
        #: rank -> ordered K replica servers (index 0 == server_map[rank])
        self.replica_map: Dict[int, List[CheckpointServer]] = (
            assign_replicas(len(self.endpoints), self.servers, replication)
            if self.servers else {}
        )
        self.launcher = launcher if launcher is not None else InstantLauncher()
        self.image_bytes = image_bytes
        self.name = name
        self.restart_policy = restart_policy
        self.max_restarts = max_restarts

        self.stats = FTStats()
        self.local_images = LocalImageStore()
        self.injector = FailureInjector(sim, net, self.local_images)
        self.completed = sim.event(name=f"{name}:completed")
        self.job: Optional[MPIJob] = None
        self.protocol = None
        self._incarnation = 0
        self._handling_failure = False
        self._started_at = 0.0

    def use_site_server_map(self, mapping: Dict[int, CheckpointServer]) -> None:
        """Override the round-robin primary assignment (e.g. Grid'5000 site
        locality) while keeping the replica sets consistent: each rank's
        replicas are its new primary followed by the next servers in ring
        order."""
        self.server_map = dict(mapping)
        order = self.servers
        self.replica_map = {}
        for rank, primary in mapping.items():
            start = order.index(primary)
            self.replica_map[rank] = [
                order[(start + j) % len(order)] for j in range(self.replication)
            ]

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        self.launcher.validate(len(self.endpoints))
        if self.sim.trace.wants("runtime.validated"):
            self.sim.trace.record(
                self.sim.now, "runtime.validated",
                n_ranks=len(self.endpoints),
                launcher=type(self.launcher).__name__,
                **self.launcher.fd_budget(),
            )
        if self.sim.trace.wants("ft.storage_config"):
            self.sim.trace.record(
                self.sim.now, "ft.storage_config",
                replication=self.replication,
                n_servers=len(self.servers),
                gc_keep=max((s.gc_keep for s in self.servers), default=1),
                fetch_rounds=self.fetch_policy.max_rounds,
            )
        self._started_at = self.sim.now
        self._launch(snapshots=None, logs=None, first=True)

    def _launch(self, snapshots, logs, first: bool,
                restored_wave: Optional[int] = None) -> None:
        self._incarnation += 1
        job = MPIJob(
            self.sim, self.net, self.endpoints, self.app_factory,
            self.channel_cls, name=f"{self.name}#{self._incarnation}",
            image_bytes=self.image_bytes,
        )
        self.job = job
        self._handling_failure = False
        job.failure_listener = self._on_failure_signal
        job.completed.callbacks.append(self._on_job_completed)
        if self.protocol_factory is not None:
            committed = self.committed_wave()
            self.protocol = self.protocol_factory(job, self)
            self.protocol.start_wave = committed + 1
            self.protocol.install()
        delays = self.launcher.spawn_delays(len(self.endpoints))
        job.start(snapshots=snapshots, start_delays=delays)
        if logs:
            # Vcl: the daemons replay the logged in-transit messages; they
            # land after the restored unexpected queues, preserving per-
            # channel FIFO order.
            trace = self.sim.trace
            live = trace.wants("ft.replayed")
            wave = restored_wave if restored_wave is not None else self.committed_wave()
            for rank, packets in logs.items():
                for packet in packets:
                    if live:
                        trace.record(self.sim.now, "ft.replayed", rank=rank,
                                     src=packet.src, seq=packet.seq, wave=wave)
                    job.channels[rank].matching.deliver(packet)

    def _on_job_completed(self, event) -> None:
        if self.completed.triggered:
            return
        if self.protocol is not None:
            self.protocol.detach()
        self.completed.succeed(self.sim.now - self._started_at)

    # ----------------------------------------------------------------- waves
    def committed_wave(self) -> int:
        if not self.servers:
            return 0
        return max(server.committed_wave for server in self.servers)

    # --------------------------------------------------------------- failure
    def schedule_task_kill(self, rank: int, at: float) -> None:
        """Kill ``rank``'s task of whatever incarnation is live at ``at``."""
        self.sim.call_at(at - self.sim.now, self._kill_now, rank, "task")

    def schedule_node_kill(self, rank: int, at: float) -> None:
        self.sim.call_at(at - self.sim.now, self._kill_now, rank, "node")

    def schedule_server_kill(self, index: int, at: float) -> None:
        """Kill checkpoint server ``index`` (machine and all its replicas)
        at simulated time ``at``."""
        self.sim.call_at(at - self.sim.now, self._server_kill_now, index)

    def schedule_image_corrupt(self, server_index: int, rank: int, at: float,
                               wave: Optional[int] = None) -> None:
        """Silently corrupt ``rank``'s stored image on server
        ``server_index`` at time ``at`` (newest committed wave by
        default)."""
        self.sim.call_at(at - self.sim.now, self._corrupt_now,
                         server_index, rank, wave)

    def _kill_now(self, rank: int, kind: str) -> None:
        if self.job is None or self.completed.triggered:
            return
        if kind == "task":
            self.injector.kill_task(self.job, rank)
        else:
            self.injector.kill_node(self.job, rank)

    def _server_kill_now(self, index: int) -> None:
        if self.completed.triggered or not self.servers:
            return
        self.injector.kill_server(self.servers[index % len(self.servers)])

    def _corrupt_now(self, server_index: int, rank: int,
                     wave: Optional[int]) -> None:
        if self.completed.triggered or not self.servers:
            return
        server = self.servers[server_index % len(self.servers)]
        self.injector.corrupt_image(server, rank, wave)

    def enable_random_failures(
        self,
        mttf: float,
        max_failures: int = 8,
        probe_lead: Optional[float] = None,
        stream: str = "failures",
    ) -> None:
        """Inject task failures as a Poisson process with the given MTTF.

        Failure instants and victims come from a dedicated RNG stream, so two
        runs of the same seed see the *same* failure schedule regardless of
        checkpoint settings — which is what makes checkpoint-period sweeps
        comparable (the MTTF experiment).

        ``probe_lead`` models the paper's proposed proactive trigger: a
        health probe (CPU temperature and the like) notices the impending
        failure ``probe_lead`` seconds ahead and asks the protocol for an
        immediate checkpoint wave.
        """
        if mttf <= 0:
            raise ValueError("mttf must be positive")
        rng = self.sim.rng.stream(f"{self.name}.{stream}")
        self.sim.process(
            self._poisson_failures(rng, mttf, max_failures, probe_lead),
            name=f"{self.name}:poisson",
        )

    def _poisson_failures(self, rng, mttf, max_failures, probe_lead):
        for _ in range(max_failures):
            delay = float(rng.exponential(mttf))
            victim = int(rng.integers(0, len(self.endpoints)))
            if probe_lead is not None and delay > probe_lead:
                self.sim.call_at(delay - probe_lead, self._proactive_trigger)
            yield self.sim.timeout(delay)
            if self.completed.triggered:
                return
            self._kill_now(victim, "task")

    def _proactive_trigger(self) -> None:
        if (self.protocol is not None and not self.protocol.detached
                and not self.completed.triggered):
            self.protocol.request_wave()

    def _on_failure_signal(self, rank: int, peer: Optional[int]) -> None:
        """Unexpected socket closure observed; first signal wins."""
        if self._handling_failure or self.completed.triggered:
            return
        self._handling_failure = True
        self.stats.failures += 1
        self.sim.trace.record(self.sim.now, "ft.failure_detected",
                              incarnation=self._incarnation)
        self.sim.process(self._recover(), name=f"{self.name}:recover")

    def _recover(self):
        recovery_start = self.sim.now
        if self.protocol is not None:
            self.protocol.detach()
        job = self.job
        job.kill()

        if self.stats.restarts >= self.max_restarts:
            raise RuntimeError(f"{self.name}: exceeded {self.max_restarts} restarts")

        committed = self.committed_wave()
        yield self.sim.timeout(self.launcher.respawn_lead_time())
        self._replace_dead_nodes()

        snapshots: Optional[List] = None
        logs: Optional[Dict[int, list]] = None
        restored_wave = 0
        if committed > 0:
            images: Optional[List[CheckpointImage]] = None
            for candidate in self._restorable_candidates(committed):
                images = yield from self._fetch_wave(candidate)
                if images is not None:
                    restored_wave = candidate
                    break
                # Wave ``candidate`` is damaged beyond reconstruction —
                # fall back to the next-newest retained commit.
                self.stats.wave_fallbacks += 1
                self.sim.trace.record(self.sim.now, "ft.wave_fallback",
                                      wave=candidate,
                                      incarnation=self._incarnation)
            if images is None:
                self.sim.trace.record(self.sim.now, "ft.storage_unrecoverable",
                                      committed=committed,
                                      incarnation=self._incarnation)
                raise StorageUnrecoverableError(
                    f"{self.name}: no complete replica set of any committed "
                    f"wave <= {committed} survives")
            snapshots = [image.snapshot for image in images]
            logs = {
                rank: image.logged_messages
                for rank, image in enumerate(images)
                if image.logged_messages
            }
        self.stats.restarts += 1
        self.stats.recovery_seconds += self.sim.now - recovery_start
        self.sim.trace.record(self.sim.now, "ft.restarted", wave=restored_wave,
                              incarnation=self._incarnation)
        if self.sim.metrics is not None:
            self.sim.metrics.observe("ft.recovery_seconds",
                                     self.sim.now - recovery_start,
                                     wave=restored_wave)
        self._launch(snapshots=snapshots, logs=logs, first=False,
                     restored_wave=restored_wave)

    def _replace_dead_nodes(self) -> None:
        """Spare-node policy: move endpoints off dead machines."""
        dead = [i for i, ep in enumerate(self.endpoints) if not ep.node.alive]
        if not dead:
            return
        if self.restart_policy == "same-node":
            # The task died but the machine is fine in the paper's setup; if
            # the whole node was killed, model a reboot.
            for index in dead:
                self.endpoints[index].node.restore()
            return
        used = {ep.node for ep in self.endpoints}
        spares = [n for n in self.net.all_nodes()
                  if n.alive and not n.service and n not in used]
        for index in dead:
            if not spares:
                raise RuntimeError("no spare nodes available for restart")
            self.endpoints[index] = Endpoint(spares.pop(0), 0)

    def _restorable_candidates(self, committed: int) -> List[int]:
        """Committed waves worth a restore attempt, newest first.

        The newest commit is always tried; older retained commits (servers
        with ``gc_keep > 1`` keep them) and waves still present as local
        images are the fallbacks when the newest one is damaged.
        """
        candidates = {committed}
        for server in self.servers:
            if not server.node.alive:
                continue
            for wave in server.committed_waves:
                if 0 < wave <= committed and wave in server.storage:
                    candidates.add(wave)
        for wave in self.local_images.waves():
            if 0 < wave <= committed:
                candidates.add(wave)
        return sorted(candidates, reverse=True)

    def _fetch_wave(self, wave: int):
        """Generator: fetch every rank's image of ``wave``, concurrently.

        All-or-nothing: returns the image list, or None when any rank's
        image could not be recovered from any replica (the wave is not
        fully restorable and a consistent rollback to it is impossible).
        """
        fetchers = [
            self.sim.process(self._fetch_image(rank, wave),
                             name=f"{self.name}:fetch:r{rank}")
            for rank in range(len(self.endpoints))
        ]
        images = []
        for fetcher in fetchers:
            image = yield fetcher
            images.append(image)
        if any(image is None for image in images):
            return None
        return images

    def _note_fetch_failure(self, rank: int, wave: int, index: int,
                            reason: str) -> None:
        self.stats.fetch_retries += 1
        if self.sim.trace.wants("ft.fetch_failed"):
            self.sim.trace.record(self.sim.now, "ft.fetch_failed", rank=rank,
                                  wave=wave, replica=index, reason=reason)
        if self.sim.metrics is not None:
            self.sim.metrics.count("ft.fetch_failures", 1.0,
                                   rank=rank, reason=reason)

    def _fetch_image(self, rank: int, wave: int):
        """Generator: load ``rank``'s image of ``wave``, or None.

        Local disk first (same-machine restart); otherwise sweep the rank's
        replicas in assignment order, verifying the checksum of whatever
        comes back, with deterministic exponential backoff + jitter between
        sweeps (:class:`FetchPolicy`).  Returns None once every sweep is
        exhausted or every replica is dead.
        """
        endpoint = self.endpoints[rank]
        image = self.local_images.get(endpoint.node.name, rank, wave)
        if image is not None:
            yield endpoint.node.disk.read(image.nbytes)
            self.sim.trace.count("ft.restore_local")
            return image
        replicas = self.replica_map.get(rank) or [self.server_map[rank]]
        policy = self.fetch_policy
        rng = None
        for round_no in range(policy.max_rounds):
            for index, server in enumerate(replicas):
                if not server.node.alive:
                    continue
                connection = self.net.connect(endpoint, server.endpoint)
                server.serve_connection(connection.end_b)
                end = connection.end_a
                end.send(("fetch", rank, wave), nbytes=_CONTROL_BYTES)
                try:
                    message = yield end.recv()
                except ConnectionError:
                    # replica died mid-fetch
                    self._note_fetch_failure(rank, wave, index, "connection")
                    continue
                connection.break_()
                _kind, image, status = message
                if image is not None and image.verify():
                    self.sim.trace.count("ft.restore_remote")
                    if self.sim.trace.wants("ft.fetch_ok"):
                        self.sim.trace.record(
                            self.sim.now, "ft.fetch_ok", rank=rank, wave=wave,
                            server=server.name, checksum=image.checksum)
                    return image
                self._note_fetch_failure(
                    rank, wave, index, status if image is None else "corrupt")
            if not any(server.node.alive for server in replicas):
                break  # nobody left to answer; backing off cannot help
            if round_no + 1 < policy.max_rounds:
                if rng is None:
                    rng = self.sim.rng.stream(f"{self.name}.fetch.r{rank}")
                delay = (policy.backoff_base
                         * policy.backoff_factor ** round_no
                         * (1.0 + policy.jitter * float(rng.random())))
                if self.sim.trace.wants("ft.fetch_backoff"):
                    self.sim.trace.record(self.sim.now, "ft.fetch_backoff",
                                          rank=rank, wave=wave, round=round_no,
                                          delay=delay)
                if self.sim.metrics is not None:
                    self.sim.metrics.count("ft.fetch_backoff_rounds", 1.0,
                                           rank=rank)
                    self.sim.metrics.count("ft.fetch_backoff_seconds", delay,
                                           rank=rank)
                yield self.sim.timeout(delay)
        return None
