"""Figure results: structure, ASCII rendering, JSON persistence."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Series", "FigureResult", "render", "save_json"]


@dataclass
class Series:
    """One line of a figure: label plus (x, y) points."""

    label: str
    xs: List[float]
    ys: List[float]
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"label": self.label, "xs": self.xs, "ys": self.ys,
                "meta": self.meta}


@dataclass
class FigureResult:
    """Everything one reproduced table/figure produced."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series]
    #: named shape assertions: check name -> bool (the paper's qualitative
    #: claims, evaluated against this run's numbers)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    profile: str = "quick"
    #: per-experiment verdicts of the online invariant monitors
    #: (:mod:`repro.verify`), filled in by the harness wrapper
    monitors: Dict[str, Any] = field(default_factory=dict)
    #: per-run metrics snapshots (:mod:`repro.obs`), filled in by the
    #: harness wrapper when runs executed with metrics on; empty otherwise
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "figure": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "profile": self.profile,
            "series": [s.as_dict() for s in self.series],
            "checks": self.checks,
            "notes": self.notes,
            "monitors": self.monitors,
            "metrics": self.metrics,
        }


def _format_value(value: float) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def render(result: FigureResult) -> str:
    """ASCII rendering: one table per figure with a column per series."""
    lines: List[str] = []
    lines.append("=" * 72)
    lines.append(f"{result.figure_id}: {result.title}   [profile={result.profile}]")
    lines.append("=" * 72)
    xs: List[float] = []
    for series in result.series:
        for x in series.xs:
            if x not in xs:
                xs.append(x)
    xs.sort()
    header = [result.x_label] + [s.label for s in result.series]
    widths = [max(14, len(h) + 2) for h in header]
    lines.append("".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-" * sum(widths))
    for x in xs:
        row = [_format_value(x)]
        for series in result.series:
            try:
                index = series.xs.index(x)
                row.append(_format_value(series.ys[index]))
            except ValueError:
                row.append("-")
        lines.append("".join(cell.ljust(w) for cell, w in zip(row, widths)))
    lines.append("-" * sum(widths))
    numeric = [s for s in result.series if len(s.xs) >= 2]
    if len(xs) >= 3 and numeric:
        from repro.tools.ascii_plot import ascii_plot

        lines.append("")
        lines.append(ascii_plot(
            [(s.label, s.xs, s.ys) for s in numeric],
            x_label=result.x_label, y_label=result.y_label,
        ))
    lines.append(f"y: {result.y_label}")
    for note in result.notes:
        lines.append(f"note: {note}")
    for check, passed in result.checks.items():
        status = "PASS" if passed else "FAIL"
        lines.append(f"check [{status}] {check}")
    lines.append("")
    return "\n".join(lines)


def save_json(result: FigureResult, directory: str = "results") -> str:
    """Persist a figure's data for EXPERIMENTS.md and regression diffs."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.figure_id}_{result.profile}.json")
    with open(path, "w") as handle:
        json.dump(result.as_dict(), handle, indent=2)
    return path
