"""Command-line entry: regenerate any table/figure of the paper.

Usage::

    python -m repro.harness fig5 [fig7 ...] [--profile quick|paper|smoke]
                                 [--seed N] [--save-dir results] [--no-save]
    python -m repro.harness all --profile quick
    python -m repro.harness --list
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.harness.config import PROFILES, get_profile
from repro.harness.figures import EXPERIMENT_IDS, get_experiment
from repro.harness.report import render, save_json

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"experiment ids ({', '.join(EXPERIMENT_IDS)}) "
                             "or 'all'")
    parser.add_argument("--profile", default="quick", choices=sorted(PROFILES),
                        help="experiment scale (default: quick)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save-dir", default="results",
                        help="where to write JSON results")
    parser.add_argument("--no-save", action="store_true")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run each figure's grid of independent runs "
                             "on an N-worker process pool (default: the "
                             "REPRO_JOBS environment variable, else "
                             "sequential); results are identical either "
                             "way")
    parser.add_argument("--policy", default=None,
                        choices=("restart", "spare", "shrink"),
                        help="restrict the 'recovery' figure to one "
                             "recovery policy series (other figures are "
                             "unaffected; see docs/RECOVERY.md)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect repro.obs metrics for every run and "
                             "embed the snapshots in the figure JSON "
                             "(figures are identical either way; see "
                             "docs/OBSERVABILITY.md)")
    args = parser.parse_args(argv)
    if args.jobs is not None:
        # Figure modules read REPRO_JOBS through execute_grid, so the flag
        # needs no per-figure plumbing.
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.metrics:
        # execute() reads REPRO_METRICS, so pool workers inherit it too.
        os.environ["REPRO_METRICS"] = "1"

    if args.list or not args.experiments:
        for experiment_id in EXPERIMENT_IDS:
            print(experiment_id)
        return 0

    requested = list(EXPERIMENT_IDS) if "all" in args.experiments \
        else args.experiments
    profile = get_profile(args.profile, seed=args.seed)
    if args.policy:
        from dataclasses import replace
        profile = replace(profile, recovery_policies=(args.policy,))

    failures = 0
    for experiment_id in requested:
        started = time.time()
        result = get_experiment(experiment_id)(profile)
        elapsed = time.time() - started
        print(render(result))
        print(f"[{experiment_id}] regenerated in {elapsed:.1f}s wall time")
        if not args.no_save:
            path = save_json(result, args.save_dir)
            print(f"[{experiment_id}] saved {path}")
        print()
        if not result.all_checks_pass:
            failures += 1
    if failures:
        print(f"{failures} experiment(s) had failing shape checks",
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
