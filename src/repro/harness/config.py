"""Harness profiles.

Every figure script runs under a *profile* that sets the experiment scale:

* ``paper`` — the paper's parameters (process counts, 200-iteration NAS
  runs, 10-120 s checkpoint periods).  Hours of wall time.
* ``quick`` — the default: iteration counts, checkpoint periods and image
  sizes all scaled by the same factor, so every ratio that shapes a figure
  (transfer time vs period, waves per run, compute/communication balance)
  is preserved while runs shrink ~7x.  Stall-type overheads (fork pauses,
  marker rounds) do *not* scale, so absolute overhead percentages read
  higher than the paper's; orderings and trends are unaffected.
* ``smoke`` — minimum sizes for CI and pytest-benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["Profile", "PROFILES", "get_profile"]


@dataclass(frozen=True)
class Profile:
    """Scale parameters for the figure reproductions."""

    name: str
    #: multiplies NAS iteration counts, checkpoint periods and image sizes
    time_scale: float
    seed: int = 0

    # Fig. 5: BT.B/64, ratio of checkpoint servers
    fig5_procs: int = 64
    fig5_servers: Tuple[int, ...] = (1, 2, 4, 8)
    fig5_period: float = 30.0

    # Fig. 6: BT.B, process-count scaling at four periods
    fig6_sizes: Tuple[int, ...] = (16, 36, 64, 100, 144, 169, 196, 256)
    fig6_periods: Tuple[float, ...] = (10.0, 30.0, 60.0, 120.0)
    fig6_nodes: int = 150
    fig6_servers: int = 9

    # Fig. 7: CG.C/64 on Myrinet, time vs waves, three implementations
    fig7_procs: int = 64
    fig7_periods: Tuple[float, ...] = (8.0, 15.0, 25.0, 40.0, 80.0)
    fig7_servers: int = 2

    # Fig. 8: CG.C on Myrinet, Pcl/Nemesis at several sizes
    fig8_procs: Tuple[int, ...] = (4, 8, 16, 32, 64)
    fig8_periods: Tuple[float, ...] = (10.0, 25.0, 80.0)
    fig8_nodes: int = 32

    # Replication ablation (Fig. 5-style): BT.B checkpoint time vs ranks at
    # storage replication factors K, with a fixed server pool
    repl_procs: Tuple[int, ...] = (16, 36, 64)
    repl_factors: Tuple[int, ...] = (1, 2, 3)
    repl_servers: int = 3
    repl_period: float = 30.0

    # Recovery-cost ablation: time-to-recover vs concurrent node failures
    # for each recovery policy (malleable stencil; kill time is in paper
    # seconds and scaled by the figure so it always lands after a few
    # committed waves)
    recovery_procs: int = 8
    recovery_policies: Tuple[str, ...] = ("restart", "spare", "shrink")
    recovery_failures: Tuple[int, ...] = (1, 2, 4)
    recovery_period: float = 30.0
    recovery_spares: int = 4
    recovery_kill_time: float = 160.0
    recovery_servers: int = 2

    # Fig. 9: grid, BT.B at fixed size, period sweep
    fig9_procs: int = 400
    fig9_periods: Tuple[float, ...] = (30.0, 60.0, 120.0, 240.0)
    fig9_servers: int = 4

    # Fig. 10: grid, BT.B size sweep, 60 s period vs none
    fig10_sizes: Tuple[int, ...] = (100, 225, 400, 529)
    fig10_period: float = 60.0
    fig10_servers: int = 4

    def scaled_period(self, period: float) -> float:
        return period * self.time_scale


PAPER = Profile(name="paper", time_scale=1.0)

QUICK = Profile(
    name="quick",
    time_scale=0.15,
    fig6_sizes=(16, 64, 144, 169),
    fig6_periods=(10.0, 60.0),
    fig7_periods=(8.0, 20.0, 50.0, 120.0),
    fig8_procs=(4, 16, 32, 64),
    fig8_periods=(10.0, 40.0),
    fig9_procs=144,
    fig9_periods=(30.0, 60.0, 120.0, 240.0),
    fig10_sizes=(64, 100, 144),
)

SMOKE = Profile(
    name="smoke",
    time_scale=0.05,
    fig5_servers=(1, 4),
    fig6_sizes=(16, 64),
    fig6_periods=(10.0, 60.0),
    fig7_periods=(10.0, 60.0),
    fig7_procs=16,
    fig8_procs=(4, 16),
    fig8_periods=(10.0, 60.0),
    repl_procs=(4, 16),
    recovery_failures=(1, 2),
    recovery_spares=2,
    fig9_procs=36,
    fig9_periods=(60.0, 240.0),
    fig10_sizes=(16, 36),
)

PROFILES = {p.name: p for p in (PAPER, QUICK, SMOKE)}


def get_profile(name: str, seed: int = 0) -> Profile:
    try:
        profile = PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown profile {name!r}; have {sorted(PROFILES)}")
    return replace(profile, seed=seed) if seed != profile.seed else profile
