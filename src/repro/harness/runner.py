"""One measured run: deploy, execute, collect.

The figure scripts are thin loops over :func:`execute`; everything about
deploying a benchmark under a protocol at a profile's scale lives here so
every figure measures the same way.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.apps.base import NASBenchmark
from repro.ft.protocol import FTStats
from repro.harness.config import Profile
from repro.obs import attach_metrics
from repro.runtime import DeploymentSpec, build_run
from repro.sim import Simulator, Tracer, Watchdog, make_simulator
from repro.verify import MonitorBus, all_monitors

__all__ = [
    "RunResult",
    "execute",
    "default_channel",
    "metrics_enabled",
    "MonitorLedger",
    "monitor_ledger",
    "record_monitor_verdict",
    "record_run_metrics",
]

#: environment switch for metrics collection (``--metrics`` sets it); any
#: value other than empty/0/false/off enables the registry for every run
METRICS_ENV = "REPRO_METRICS"


def metrics_enabled() -> bool:
    """Whether ``REPRO_METRICS`` asks for metrics on every run."""
    return os.environ.get(METRICS_ENV, "").strip().lower() not in (
        "", "0", "false", "off")


class MonitorLedger:
    """Scoped collector of per-run monitor verdicts, keyed by run ``name``.

    :func:`execute` records each monitored run's verdict into the innermost
    active ledger (opened with :func:`monitor_ledger`) — and nowhere when
    no ledger is open.  This replaces a module-global accumulator that
    leaked verdicts across unrelated runs and could not work under
    process-pool execution (workers re-record into the parent's ledger via
    :func:`record_monitor_verdict`; see :mod:`repro.harness.parallel`).
    """

    def __init__(self) -> None:
        self.verdicts: Dict[str, Dict] = {}
        #: run name -> metrics snapshot, for runs executed with metrics on
        self.metrics: Dict[str, Dict] = {}

    def record(self, name: str, verdict: Dict) -> None:
        self.verdicts[name] = verdict

    def record_metrics(self, name: str, snapshot: Dict) -> None:
        self.metrics[name] = snapshot


#: innermost-active-last stack of open ledgers (scoped, not leaked: each
#: ``monitor_ledger()`` block removes its ledger on exit)
_ledger_stack: List[MonitorLedger] = []


@contextmanager
def monitor_ledger() -> Iterator[MonitorLedger]:
    """Collect the monitor verdicts of every :func:`execute` in the block."""
    ledger = MonitorLedger()
    _ledger_stack.append(ledger)
    try:
        yield ledger
    finally:
        _ledger_stack.remove(ledger)


def record_monitor_verdict(name: str, verdict: Dict) -> None:
    """Record one run's monitor verdict into the active ledger (if any)."""
    if _ledger_stack:
        _ledger_stack[-1].record(name, verdict)


def record_run_metrics(name: str, snapshot: Dict) -> None:
    """Record one run's metrics snapshot into the active ledger (if any)."""
    if _ledger_stack:
        _ledger_stack[-1].record_metrics(name, snapshot)


def default_channel(protocol: Optional[str], network: str) -> str:
    """The paper's channel for each implementation:

    * Pcl lives in MPICH2: ft-sock on TCP networks, Nemesis available on
      Myrinet (callers pick explicitly for the Fig. 7 comparison);
    * Dcl reuses the MPICH2 devices (same send-gate machinery as Pcl), so
      it defaults to ft-sock too;
    * Vcl lives in MPICH-1.2.7: always the ch_v daemon device;
    * no-checkpoint baselines use the same channel as the implementation
      they baseline (callers pass it explicitly), defaulting to ft-sock.
    """
    if protocol == "vcl":
        return "ch_v"
    return "ft_sock"


@dataclass
class RunResult:
    """Everything a figure needs from one run."""

    completion: float
    waves: int
    stats: FTStats
    protocol: Optional[str]
    channel: str
    n_procs: int
    period: Optional[float]
    meta: Dict = field(default_factory=dict)

    @property
    def monitors_ok(self) -> Optional[bool]:
        """Verdict of the online invariant monitors (None if not monitored)."""
        info = self.meta.get("monitors")
        return None if info is None else bool(info["ok"])

    def row(self) -> Dict:
        return {
            "protocol": self.protocol or "none",
            "channel": self.channel,
            "p": self.n_procs,
            "period": self.period,
            "completion": round(self.completion, 3),
            "waves": self.waves,
            "blocked": round(self.stats.blocked_seconds, 3),
            "logged_mb": round(self.stats.logged_bytes / 1e6, 3),
        }


def execute(
    bench: NASBenchmark,
    n_procs: int,
    protocol: Optional[str],
    profile: Profile,
    network: str = "gige",
    channel: Optional[str] = None,
    n_servers: int = 1,
    period: Optional[float] = None,
    procs_per_node: Optional[int] = None,
    n_compute_nodes: Optional[int] = None,
    launcher: str = "instant",
    seed: Optional[int] = None,
    time_limit: float = 1e8,
    name: str = "exp",
    monitors: bool = True,
    kills: Sequence[Tuple[str, int, float]] = (),
    ckpt_replication: int = 1,
    ckpt_gc_keep: int = 1,
    fetch_retries: int = 3,
    fetch_backoff: float = 0.05,
    fetch_jitter: float = 0.25,
    storage_faults: Sequence[Tuple[str, int, int, float]] = (),
    policy: str = "restart",
    spares: int = 0,
    watchdog: Union[bool, Watchdog] = True,
    metrics: Optional[bool] = None,
    tracer: Optional[Tracer] = None,
) -> RunResult:
    """Deploy and run one configuration to completion.

    ``period`` is in *paper* seconds; it is scaled by the profile here, as
    is the checkpoint image size (see :mod:`repro.harness.config`).

    With ``monitors`` on (the default), every protocol invariant monitor of
    :mod:`repro.verify` rides along and its verdicts land in
    ``RunResult.meta["monitors"]`` — violations are collected rather than
    raised so a broken run still yields a diagnosable result row.

    ``kills`` injects failures: ``("task" | "node", rank, at)`` triples,
    with ``at`` in *simulated* seconds (failure injection targets a point
    on the run's timeline, e.g. inside a specific checkpoint wave, so it is
    deliberately not profile-scaled).  Requires a fault-tolerance protocol.

    ``ckpt_replication`` streams each image/log to that many servers with a
    quorum commit; ``ckpt_gc_keep`` retains that many committed waves per
    server; ``fetch_retries``/``fetch_backoff``/``fetch_jitter`` shape the
    restart-time replica retry policy.  ``storage_faults`` injects
    storage-tier failures: ``("server_kill" | "image_corrupt", server,
    rank, at)`` quadruples (``rank`` is ignored by ``server_kill``), with
    ``at`` in simulated seconds like ``kills``.

    ``policy`` selects the recovery strategy after a failure: ``restart``
    (full-job rollback, the paper's behavior), ``spare`` (survivors keep
    their engines; failed ranks are promoted onto the ``spares``
    pre-allocated pool nodes) or ``shrink`` (survivors re-decompose — only
    meaningful for malleable benchmarks; others degrade to a restart with
    a ``ft.recovery_degraded`` record).  See docs/RECOVERY.md.

    ``watchdog`` arms the engine progress watchdog — pass False to run
    bare, or a configured :class:`~repro.sim.Watchdog` to tune thresholds.
    A livelock raises :class:`~repro.sim.LivelockError` out of this call
    instead of hanging the process.

    ``metrics`` attaches a :class:`~repro.obs.MetricsRegistry`
    (:func:`repro.obs.attach_metrics`); the run's snapshot lands in
    ``RunResult.meta["metrics"]``.  The default (None) consults the
    ``REPRO_METRICS`` environment variable; metrics are strictly
    observational, so figures are identical either way.  ``tracer``
    installs a caller-owned :class:`~repro.sim.Tracer` (e.g. a storing one
    for ``python -m repro.obs record``) instead of the default disabled
    tracer.
    """
    bench.validate_procs(n_procs)
    channel = channel or default_channel(protocol, network)
    if watchdog is True:
        watchdog = Watchdog()
    elif watchdog is False:
        watchdog = None
    # make_simulator honours REPRO_KERNEL: the differential rig runs whole
    # figure grid points on the naive reference kernel through this line.
    sim = make_simulator(seed=profile.seed if seed is None else seed,
                         trace=tracer, watchdog=watchdog)
    if metrics is None:
        metrics = metrics_enabled()
    registry = attach_metrics(sim) if metrics else None
    bus = None
    if monitors:
        bus = MonitorBus(all_monitors(), raise_on_violation=False)
        bus.attach(sim)
    spec = DeploymentSpec(
        n_procs=n_procs,
        protocol=protocol,
        channel=channel,
        network=network,
        n_servers=n_servers,
        period=profile.scaled_period(period) if period else 1.0,
        image_bytes=bench.image_bytes(n_procs) * profile.time_scale,
        procs_per_node=procs_per_node,
        n_compute_nodes=n_compute_nodes,
        launcher=launcher,
        ckpt_replication=ckpt_replication,
        ckpt_gc_keep=ckpt_gc_keep,
        fetch_retries=fetch_retries,
        fetch_backoff=fetch_backoff,
        fetch_jitter=fetch_jitter,
        recovery_policy=policy,
        spares=spares,
    )
    malleable_factory = (
        bench.make_app
        if policy == "shrink" and getattr(bench, "malleable", False)
        else None
    )
    run = build_run(sim, spec, bench.make_app(n_procs), name=name,
                    malleable_app_factory=malleable_factory)
    run.start()
    for kind, rank, at in kills:
        if kind == "task":
            run.schedule_task_kill(rank, at)
        elif kind == "node":
            run.schedule_node_kill(rank, at)
        else:
            raise ValueError(f"unknown kill kind {kind!r} (task or node)")
    for kind, server, rank, at in storage_faults:
        if kind == "server_kill":
            run.schedule_server_kill(server, at)
        elif kind == "image_corrupt":
            run.schedule_image_corrupt(server, rank, at)
        else:
            raise ValueError(f"unknown storage fault {kind!r} "
                             f"(server_kill or image_corrupt)")
    completion = sim.run_until_complete(run.completed, limit=time_limit)
    meta = {"name": name, "network": network, "n_servers": n_servers,
            "profile": profile.name, "bench": bench.describe(n_procs),
            "events": sim.events_processed}
    # Final per-rank application state, for result-correctness checks (the
    # chaos campaign's wrong-result verdict compares this to the benchmark's
    # expected iteration count and residual).
    meta["app_state"] = [dict(ctx.state) for ctx in run.job.contexts]
    if kills:
        meta["kills"] = [list(k) for k in kills]
    if storage_faults:
        meta["storage_faults"] = [list(f) for f in storage_faults]
    if kills or storage_faults:
        # what the injector actually did, as typed records (a node kill
        # expands into per-task kills; a kill landing after completion or
        # on an already-dead machine records nothing)
        meta["injected_kills"] = [k.as_dict() for k in run.injector.kills]
    if bus is not None:
        bus.finish()
        bus.detach()
        meta["monitors"] = {"ok": bus.ok, "verdicts": bus.verdicts()}
        record_monitor_verdict(name, meta["monitors"])
    if registry is not None:
        meta["metrics"] = registry.snapshot()
        record_run_metrics(name, meta["metrics"])
    return RunResult(
        completion=completion,
        waves=run.stats.waves_completed,
        stats=run.stats,
        protocol=protocol,
        channel=channel,
        n_procs=n_procs,
        period=period,
        meta=meta,
    )
