"""Benchmark harness: profiles, runner, reports, per-figure reproductions."""

from repro.harness.config import PROFILES, Profile, get_profile
from repro.harness.figures import EXPERIMENT_IDS, get_experiment
from repro.harness.report import FigureResult, Series, render, save_json
from repro.harness.runner import RunResult, execute

__all__ = [
    "EXPERIMENT_IDS",
    "FigureResult",
    "PROFILES",
    "Profile",
    "RunResult",
    "Series",
    "execute",
    "get_experiment",
    "get_profile",
    "render",
    "save_json",
]
