"""Figure 5 — impact of the number of checkpoint servers.

Paper setup: BT class B on 64 processes over 32 dual-processor GigE nodes,
30 s between checkpoints, checkpoint-server-to-compute-node ratios from 1:64
to 1:8.  Top panel: completion time; bottom panel: completed waves.

Expected shape (Sec. 5.2):

* **Pcl** completion time *decreases* as servers are added — its blocked-
  then-resumed communication competes with the image transfers for NIC
  bandwidth, so shorter transfers mean less contention;
* **Vcl** completion time stays *nearly constant* — the time saved on
  transfers is spent completing *more* waves instead (bottom panel);
* at the largest server count the two implementations nearly meet, with
  MPICH2's (Pcl's) lower baseline showing.
"""

from __future__ import annotations

from repro.apps import BT
from repro.harness.config import Profile
from repro.harness.parallel import execute_grid
from repro.harness.report import FigureResult, Series

__all__ = ["run"]


def run(profile: Profile) -> FigureResult:
    bench = BT(klass="B", scale=profile.time_scale)
    p = profile.fig5_procs
    tasks = [
        dict(bench=bench, n_procs=p, protocol=protocol, profile=profile,
             n_servers=n_servers,
             period=profile.fig5_period,
             procs_per_node=2,
             name=f"fig5-{protocol}-s{n_servers}")
        for protocol in ("pcl", "vcl")
        for n_servers in profile.fig5_servers
    ]
    grid = execute_grid(tasks)
    per_protocol = len(profile.fig5_servers)
    results = {"pcl": grid[:per_protocol], "vcl": grid[per_protocol:]}

    servers = list(profile.fig5_servers)
    pcl_times = [r.completion for r in results["pcl"]]
    vcl_times = [r.completion for r in results["vcl"]]
    pcl_waves = [r.waves for r in results["pcl"]]
    vcl_waves = [r.waves for r in results["vcl"]]

    def mean_wave(result):
        durations = result.stats.wave_durations()
        return sum(durations) / len(durations) if durations else 0.0

    vcl_band = (max(vcl_times) - min(vcl_times)) / min(vcl_times)
    checks = {
        "pcl time decreases with more servers":
            pcl_times[-1] < pcl_times[0],
        "pcl gains >=2% from 1 to max servers":
            pcl_times[-1] <= 0.98 * pcl_times[0],
        "vcl time nearly constant (<8% band)": vcl_band < 0.08,
        # more servers -> shorter transfers -> shorter waves, which is what
        # lets Vcl fit more waves into its constant completion time
        "vcl wave duration shrinks with more servers":
            mean_wave(results["vcl"][-1]) < mean_wave(results["vcl"][0]),
        "vcl completes at least as many waves with more servers":
            vcl_waves[-1] >= vcl_waves[0],
        "every pcl run completed at least one wave":
            all(w >= 1 for w in pcl_waves),
    }
    return FigureResult(
        figure_id="fig5",
        title="Checkpoint servers vs completion time (BT.B, 64 procs, "
              f"period {profile.fig5_period}s)",
        x_label="n_servers",
        y_label="completion time [s] / completed waves",
        series=[
            Series("pcl time [s]", servers, pcl_times),
            Series("vcl time [s]", servers, vcl_times),
            Series("pcl waves", servers, [float(w) for w in pcl_waves]),
            Series("vcl waves", servers, [float(w) for w in vcl_waves]),
        ],
        checks=checks,
        notes=[
            "paper: Pcl decreases with servers; Vcl flat with more waves",
            f"server:compute ratios 1:{p} .. 1:{p // max(profile.fig5_servers)}",
        ],
        profile=profile.name,
    )
