"""Figure 6 — scalability of fault tolerance with the number of processes.

Paper setup: BT class B at growing process counts on the Orsay GigE cluster
(150 machines: one process per node up to 144, two per node beyond), 9
checkpoint servers, four checkpoint periods (10/30/60/120 s), compared with
checkpoint-free executions of both MPI implementations.

Expected shape (Sec. 5.2):

* without checkpoints the two implementations behave similarly, MPICH2
  slightly ahead;
* at a 10 s period the blocking protocol degrades badly (it "spends most of
  the time synchronizing"); at larger periods both protocols settle to a
  small, roughly constant overhead;
* the number of processes has no measurable impact on the checkpointing
  overhead for either protocol;
* a dip appears past 144 processes when two processes share one NIC.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.apps import BT
from repro.harness.config import Profile
from repro.harness.parallel import execute_grid
from repro.harness.report import FigureResult, Series

__all__ = ["run"]


def _deployment(p: int, profile: Profile) -> Dict:
    """One process per node up to 144; dual-processor deployments beyond
    (the paper had 150 machines)."""
    if p > 144:
        return {"procs_per_node": 2, "n_compute_nodes": -(-p // 2)}
    return {"procs_per_node": 1, "n_compute_nodes": min(p, profile.fig6_nodes)}


def run(profile: Profile) -> FigureResult:
    bench = BT(klass="B", scale=profile.time_scale)
    sizes = [p for p in profile.fig6_sizes]

    tasks = []
    keys: List[Tuple[str, object, int]] = []
    for p in sizes:
        deploy = _deployment(p, profile)
        for channel in ("ft_sock", "ch_v"):
            tasks.append(dict(bench=bench, n_procs=p, protocol=None,
                              profile=profile, channel=channel,
                              n_servers=profile.fig6_servers,
                              name=f"fig6-base-{channel}-p{p}", **deploy))
            keys.append(("base", channel, p))
        for protocol in ("pcl", "vcl"):
            for period in profile.fig6_periods:
                tasks.append(dict(bench=bench, n_procs=p, protocol=protocol,
                                  profile=profile,
                                  n_servers=profile.fig6_servers,
                                  period=period,
                                  name=f"fig6-{protocol}-p{p}-t{period}",
                                  **deploy))
                keys.append(("ckpt", (protocol, period), p))

    baselines: Dict[str, List[float]] = {"ft_sock": [], "ch_v": []}
    times: Dict[Tuple[str, float], List[float]] = {}
    for (kind, key, _p), result in zip(keys, execute_grid(tasks)):
        if kind == "base":
            baselines[key].append(result.completion)
        else:
            times.setdefault(key, []).append(result.completion)

    series = [
        Series("no-ckpt mpich2", sizes, baselines["ft_sock"]),
        Series("no-ckpt mpich-v", sizes, baselines["ch_v"]),
    ]
    for (protocol, period), ys in sorted(times.items()):
        series.append(Series(f"{protocol}@{period:g}s", sizes, ys))

    def overhead(protocol: str, period: float, index: int) -> float:
        base_channel = "ft_sock" if protocol == "pcl" else "ch_v"
        base = baselines[base_channel][index]
        return (times[(protocol, period)][index] - base) / base

    shortest = min(profile.fig6_periods)
    longest = max(profile.fig6_periods)
    mid = sizes.index(64) if 64 in sizes else len(sizes) // 2

    # overhead-vs-p flatness at the longest period: spread in percentage
    # points across sizes
    def spread(protocol: str) -> float:
        values = [overhead(protocol, longest, i) for i in range(len(sizes))]
        return max(values) - min(values)

    checks = {
        "baselines similar (mpich2 within 10% of mpich-v)": all(
            ft <= chv * 1.10 for ft, chv in
            zip(baselines["ft_sock"], baselines["ch_v"])
        ),
        f"pcl overhead at {shortest:g}s exceeds pcl at {longest:g}s":
            overhead("pcl", shortest, mid) > overhead("pcl", longest, mid),
        f"pcl at {shortest:g}s degrades more than vcl at {shortest:g}s":
            overhead("pcl", shortest, mid) > overhead("vcl", shortest, mid),
        "process count has small impact on pcl overhead "
        f"(spread < 15 points at {longest:g}s)": spread("pcl") < 0.15,
        "process count has small impact on vcl overhead "
        f"(spread < 15 points at {longest:g}s)": spread("vcl") < 0.15,
    }
    if 144 in sizes and 169 in sizes:
        i144, i169 = sizes.index(144), sizes.index(169)
        checks["dip past 144 procs (NIC sharing): t(169) > t(144)"] = (
            baselines["ft_sock"][i169] > baselines["ft_sock"][i144]
        )

    return FigureResult(
        figure_id="fig6",
        title="Execution time vs process count at four checkpoint periods "
              "(BT.B, GigE cluster)",
        x_label="processes",
        y_label="completion time [s]",
        series=series,
        checks=checks,
        notes=[
            "one process per node up to 144; two per node beyond (shared NIC)",
            f"{profile.fig6_servers} checkpoint servers",
        ],
        profile=profile.name,
    )
