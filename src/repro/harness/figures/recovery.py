"""Recovery-cost ablation — time-to-recover vs concurrent failures × policy.

The paper restarts the whole job after any failure (Sec. 4: the failed
processes are restarted from the last coordinated checkpoint wave and every
survivor rolls back with them).  ULFM-style survivor recovery replaces that
with a failure-set agreement round among the survivors followed by one of
three continuation strategies (docs/RECOVERY.md):

* ``restart`` — the paper's behavior, the baseline series;
* ``spare``   — failed ranks are promoted onto pre-allocated spare nodes;
  survivors keep their engines and only the replacements stream images;
* ``shrink``  — survivors renumber and the (malleable) application
  re-decomposes over the smaller communicator.

This figure injects ``k`` near-simultaneous node failures (close enough to
coalesce into a single detection/agreement/recovery cycle) into a stencil
run and plots the measured time-to-recover (``FTStats.recovery_seconds``)
against ``k`` for each policy.

Expected shape:

* restart tears the whole job down, so it pays the process manager's
  failure-cleanup lead (FTPM unpublishes every business card) before any
  image moves — high already at k=1 and roughly flat in k;
* spare and shrink skip that lead: survivors stay resident, so the cost
  is the agreement round plus the image restore;
* the agreement round itself — visible in the ``ft.recovery_phase``
  timers (detect/agree/promote/restore) — costs network latency, orders
  of magnitude below an image restore.
"""

from __future__ import annotations

from typing import List

from repro.apps import Stencil
from repro.harness.config import Profile
from repro.harness.parallel import execute_grid
from repro.harness.report import FigureResult, Series

__all__ = ["run"]

#: spacing between the k near-simultaneous kills — inside the membership
#: tracker's suspicion window, so one agreement round covers all of them
#: (a correlated failure: a switch or power domain taking out k nodes)
_KILL_SPACING = 1e-4


def run(profile: Profile) -> FigureResult:
    bench = Stencil(klass="B", scale=profile.time_scale)
    p = profile.recovery_procs
    policies = profile.recovery_policies
    kill_at = profile.recovery_kill_time * profile.time_scale

    tasks = []
    for policy in policies:
        for k in profile.recovery_failures:
            kills = [("node", rank, kill_at + index * _KILL_SPACING)
                     for index, rank in enumerate(range(1, 1 + k))]
            tasks.append(dict(
                bench=bench, n_procs=p, protocol="pcl", profile=profile,
                period=profile.recovery_period,
                n_servers=profile.recovery_servers,
                policy=policy, spares=profile.recovery_spares,
                kills=kills, launcher="ftpm",
                name=f"recovery-{policy}-k{k}",
            ))
    grid = execute_grid(tasks)

    per_policy = len(profile.recovery_failures)
    series: List[Series] = []
    recovery = {}
    results = {}
    for index, policy in enumerate(policies):
        runs = grid[index * per_policy:(index + 1) * per_policy]
        xs = [float(k) for k in profile.recovery_failures]
        ys = [r.stats.recovery_seconds for r in runs]
        series.append(Series(policy, xs, ys))
        recovery[policy] = ys
        results[policy] = runs

    max_k = max(profile.recovery_failures)
    checks = {
        "every run completed": all(r.completion > 0 for r in grid),
        "every failure burst coalesced into one recovery":
            all(r.stats.restarts == 1 for r in grid),
        "no policy degraded to a full restart":
            all(r.stats.policy_degradations == 0 for r in grid),
    }
    if "spare" in results:
        checks["spare promoted exactly the failed ranks"] = all(
            r.stats.spares_promoted == k for r, k in
            zip(results["spare"], profile.recovery_failures))
    if "shrink" in results:
        shrink_sizes = [len(r.meta["app_state"]) for r in results["shrink"]]
        checks["shrink re-decomposed over the survivors"] = all(
            size == p - k for size, k in
            zip(shrink_sizes, profile.recovery_failures))
    survivor_policies = [pol for pol in policies if pol != "restart"]
    if "restart" in results and survivor_policies:
        checks["survivor policies recover faster than a full restart"] = all(
            recovery[pol][i] < recovery["restart"][i]
            for pol in survivor_policies for i in range(per_policy))
    notes = [
        f"x = concurrent node failures (burst spacing {_KILL_SPACING}s), "
        f"y = measured time-to-recover",
        f"stencil.B p={p}, period {profile.recovery_period}s, "
        f"{profile.recovery_spares} spares, kill at t={kill_at:.1f}s",
    ] + [
        f"{policy}: " + ", ".join(
            f"k={k}: {t:.3f}s" for k, t in
            zip(profile.recovery_failures, recovery[policy]))
        for policy in policies
    ]
    return FigureResult(
        figure_id="recovery",
        title=f"Survivor recovery: time-to-recover vs concurrent failures "
              f"(stencil.B, {p} procs, up to {max_k} failures)",
        x_label="concurrent node failures",
        y_label="time to recover [s]",
        series=series,
        checks=checks,
        notes=notes,
        profile=profile.name,
    )
