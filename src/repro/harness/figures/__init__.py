"""Per-figure reproduction scripts.

Each module exposes ``run(profile) -> FigureResult``; :func:`get_experiment`
resolves an experiment id lazily so importing one figure never pays for the
others.
"""

from importlib import import_module
from typing import Callable, List

EXPERIMENT_IDS = (
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "netpipe",
    "scale_limit",
    "ablations",
    "mttf",
    "replication",
    "protocol_race",
    "recovery",
)


def get_experiment(experiment_id: str) -> Callable:
    """Resolve an experiment id to its ``run(profile)`` callable.

    The returned callable wraps the figure's ``run``: it collects the
    per-experiment verdicts of the online invariant monitors (every
    :func:`repro.harness.runner.execute` call records them) into the
    figure's result and adds a blanket "monitors clean" shape check, so a
    protocol-invariant violation fails the figure like any paper claim.
    """
    if experiment_id not in EXPERIMENT_IDS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; have {EXPERIMENT_IDS}"
        )
    module = import_module(f"repro.harness.figures.{experiment_id}")

    def run_with_monitors(profile):
        from repro.harness.runner import monitor_ledger

        with monitor_ledger() as ledger:
            result = module.run(profile)
        verdicts = ledger.verdicts
        result.monitors = verdicts
        result.metrics = ledger.metrics
        dirty = sorted(
            name for name, verdict in verdicts.items() if not verdict["ok"]
        )
        result.checks["online invariant monitors clean"] = not dirty
        if dirty:
            result.notes.append(
                f"invariant violations in: {', '.join(dirty)}"
            )
        return result

    return run_with_monitors


__all__ = ["EXPERIMENT_IDS", "get_experiment"]
