"""Per-figure reproduction scripts.

Each module exposes ``run(profile) -> FigureResult``; :func:`get_experiment`
resolves an experiment id lazily so importing one figure never pays for the
others.
"""

from importlib import import_module
from typing import Callable, List

EXPERIMENT_IDS = (
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "netpipe",
    "scale_limit",
    "ablations",
    "mttf",
)


def get_experiment(experiment_id: str) -> Callable:
    """Resolve an experiment id to its ``run(profile)`` callable."""
    if experiment_id not in EXPERIMENT_IDS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; have {EXPERIMENT_IDS}"
        )
    module = import_module(f"repro.harness.figures.{experiment_id}")
    return module.run


__all__ = ["EXPERIMENT_IDS", "get_experiment"]
