"""NetPIPE table — raw platform performance (Sec. 5.4).

The paper measures the Grid'5000 network with NetPIPE before the large-scale
runs: "the network is up to 20 times faster between two nodes of the same
cluster than between two nodes of two distinct clusters.  Moreover, the
latency is up to two orders of magnitude greater between clusters than
between nodes."  This experiment reruns that measurement against the model
and checks both ratios.
"""

from __future__ import annotations

from repro.harness.config import Profile
from repro.harness.report import FigureResult, Series
from repro.net import grid5000
from repro.net.topology import Endpoint
from repro.sim import Simulator
from repro.tools import run_netpipe, summarize

__all__ = ["run"]

_SIZES = (8, 64, 1024, 16 * 1024, 256 * 1024, 1024 * 1024)


def run(profile: Profile) -> FigureResult:
    sim = Simulator(seed=profile.seed)
    grid = grid5000(sim)
    orsay = grid.clusters["orsay"].nodes
    rennes = grid.clusters["rennes"].nodes

    intra = run_netpipe(sim, grid, Endpoint(orsay[0], 0), Endpoint(orsay[1], 0),
                        sizes=_SIZES)
    inter = run_netpipe(sim, grid, Endpoint(orsay[2], 0), Endpoint(rennes[0], 0),
                        sizes=_SIZES)

    intra_head = summarize(intra)
    inter_head = summarize(inter)
    latency_ratio = inter_head["latency"] / intra_head["latency"]
    bandwidth_ratio = intra_head["bandwidth"] / inter_head["bandwidth"]

    checks = {
        "intra-cluster bandwidth ~20x inter-cluster (15-25x)":
            15.0 <= bandwidth_ratio <= 25.0,
        "inter-cluster latency ~2 orders of magnitude higher (50-200x)":
            50.0 <= latency_ratio <= 200.0,
        "bandwidth grows with message size on both paths":
            intra[-1].bandwidth > intra[0].bandwidth
            and inter[-1].bandwidth > inter[0].bandwidth,
    }
    return FigureResult(
        figure_id="netpipe",
        title="NetPIPE on the Grid'5000 model: intra- vs inter-cluster",
        x_label="message bytes",
        y_label="bandwidth [MB/s]",
        series=[
            Series("intra bw [MB/s]", [s.nbytes for s in intra],
                   [s.bandwidth / 1e6 for s in intra]),
            Series("inter bw [MB/s]", [s.nbytes for s in inter],
                   [s.bandwidth / 1e6 for s in inter]),
            Series("intra lat [us]", [s.nbytes for s in intra],
                   [s.latency * 1e6 for s in intra]),
            Series("inter lat [us]", [s.nbytes for s in inter],
                   [s.latency * 1e6 for s in inter]),
        ],
        checks=checks,
        notes=[
            f"bandwidth ratio {bandwidth_ratio:.1f}x, "
            f"latency ratio {latency_ratio:.0f}x",
        ],
        profile=profile.name,
    )
