"""Figure 9 — checkpoint frequency at large scale (grid, BT.B).

Paper setup: BT class B with 400 processes spread over the Grid'5000 slice,
each node using a site-local checkpoint server (4 servers), Pcl only (Vcl's
dispatcher cannot exceed ~300 processes, see the scale_limit experiment).
Left panel: completion time and wave count against the time between
checkpoints; right panel: completion time against the number of waves.

Expected shape (Sec. 5.4): even on a grid, completion time stays *linear in
the number of completed waves*, and the wave count is proportional to the
checkpoint frequency (inverse of the period).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.apps import BT
from repro.harness.config import Profile
from repro.harness.report import FigureResult, Series
from repro.harness.runner import execute
from repro.tools import linear_fit

__all__ = ["run"]


def run(profile: Profile) -> FigureResult:
    bench = BT(klass="B", scale=profile.time_scale)
    p = profile.fig9_procs

    baseline = execute(bench, p, None, profile, network="grid5000",
                       n_servers=profile.fig9_servers, name="fig9-base")
    rows: List[Tuple[float, int, float]] = []  # (period, waves, time)
    for period in profile.fig9_periods:
        result = execute(bench, p, "pcl", profile, network="grid5000",
                         n_servers=profile.fig9_servers, period=period,
                         name=f"fig9-t{period}")
        rows.append((period, result.waves, result.completion))

    periods = [row[0] for row in rows]
    waves = [float(row[1]) for row in rows]
    times = [row[2] for row in rows]

    # right panel: time vs waves, with the checkpoint-free run at 0 waves
    fit = linear_fit([0.0] + waves, [baseline.completion] + times)
    # waves ~ 1/period: compare the wave count against frequency ordering
    frequency_sorted = sorted(zip(periods, waves))
    wave_monotone = all(
        frequency_sorted[i][1] >= frequency_sorted[i + 1][1] - 1e-9
        for i in range(len(frequency_sorted) - 1)
    )

    checks = {
        "completion time linear in waves (r2 > 0.8, slope > 0)":
            fit.r2 > 0.8 and fit.slope > 0,
        "shorter periods give at least as many waves": wave_monotone,
        "every run with completed waves costs time vs no-ckpt": all(
            t > baseline.completion
            for t, w in zip(times, waves) if w >= 1
        ),
        "highest frequency completed the most waves":
            max(waves) == waves[periods.index(min(periods))],
    }
    return FigureResult(
        figure_id="fig9",
        title=f"Checkpoint frequency at large scale (BT.B, {p} procs, "
              "Grid'5000)",
        x_label="period [s, paper scale]",
        y_label="completion time [s] / waves",
        series=[
            Series("completion [s]", periods, times),
            Series("waves", periods, waves),
            Series("no-ckpt [s]", [max(periods)], [baseline.completion]),
        ],
        checks=checks,
        notes=[
            f"time-vs-waves fit: {fit.slope:.2f}s/wave from "
            f"{fit.intercept:.1f}s (r2={fit.r2:.3f})",
            "site-local checkpoint servers "
            f"({profile.fig9_servers} across sites)",
        ],
        profile=profile.name,
    )
