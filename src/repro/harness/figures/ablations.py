"""Ablations — isolating the design choices the paper's discussion credits.

Four single-variable studies on small fixed workloads:

* ``daemon-hops``: the ch_v daemon channel versus a direct-socket channel
  under the same latency-bound workload, no checkpointing at all — how much
  of Vcl's handicap (Fig. 7) is the *architecture* (two extra Unix-socket
  hops and a serializing daemon), not the protocol.
* ``gating``: Pcl with per-channel gates (ft-sock) versus the Nemesis
  single-queue stopper request on the *same* fabric — the two blocking
  mechanisms of Sec. 4.2 should be nearly equivalent.
* ``fork``: Pcl's fork-based checkpointing versus a stop-and-copy variant
  (process frozen for the whole image write) at a fixed 64 MB image,
  quantifying what the fork buys per wave.
* ``logging-volume``: Vcl's total logged in-transit bytes as the wave
  frequency grows — the memory/traffic price of non-blocking waves.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps import CG
from repro.apps.synthetic import burst
from repro.harness.config import Profile
from repro.harness.report import FigureResult, Series
from repro.harness.runner import execute
from repro.runtime import DeploymentSpec, build_run
from repro.sim import Simulator

__all__ = ["run"]


def _ft_run(profile: Profile, app, n_procs, protocol, channel, period,
            image_bytes, fork_latency, name, network="gige", n_servers=2):
    sim = Simulator(seed=profile.seed)
    spec = DeploymentSpec(
        n_procs=n_procs, protocol=protocol, channel=channel, network=network,
        n_servers=n_servers, period=period, image_bytes=image_bytes,
        procs_per_node=1, fork_latency=fork_latency, launcher="instant",
    )
    run = build_run(sim, spec, app, name=name)
    run.start()
    completion = sim.run_until_complete(run.completed, limit=1e8)
    return completion, run


def run(profile: Profile) -> FigureResult:
    scale = min(profile.time_scale, 0.15)
    series: List[Series] = []
    checks: Dict[str, bool] = {}
    notes: List[str] = []

    # 1. daemon hops: the pure channel cost on a latency-bound workload
    cg_small = CG(klass="A", scale=min(1.0, scale * 4))
    p = 16
    daemon = execute(cg_small, p, None, profile, network="myrinet",
                     channel="ch_v", name="abl-daemon-chv", n_servers=1)
    direct = execute(cg_small, p, None, profile, network="myrinet",
                     channel="ft_sock", name="abl-daemon-ftsock", n_servers=1)
    daemon_cost = daemon.completion / direct.completion - 1.0
    series.append(Series("daemon-hops [s]", [0.0, 1.0],
                         [direct.completion, daemon.completion],
                         meta={"x": "0=direct socket, 1=ch_v daemon"}))
    checks["ch_v daemon hops cost >5% on a latency-bound run"] = daemon_cost > 0.05
    notes.append(f"daemon-hops: +{100 * daemon_cost:.1f}% completion time")

    # 2. gating granularity on one fabric (GigE): ft-sock gates vs stopper
    cg = CG(klass="B", scale=scale)
    period = 20.0
    gates = execute(cg, p, "pcl", profile, network="gige", channel="ft_sock",
                    period=period, n_servers=2, name="abl-gates")
    stopper = execute(cg, p, "pcl", profile, network="gige", channel="nemesis",
                      period=period, n_servers=2, name="abl-stopper")
    gap = abs(stopper.completion - gates.completion) / gates.completion
    series.append(Series("gating [s]", [0.0, 1.0],
                         [gates.completion, stopper.completion],
                         meta={"x": "0=per-channel gates, 1=stopper request"}))
    checks["stopper and per-channel gating within 10% on one fabric"] = gap < 0.10
    notes.append(f"gating: stopper vs gates differ by {100 * gap:.1f}%")

    # 3. fork vs stop-and-copy at a fixed 64 MB image
    image = 64e6
    scaled_period = profile.scaled_period(10.0)
    app = cg.make_app(p)
    fork_time, fork_run = _ft_run(profile, app, p, "pcl", "ft_sock",
                                  scaled_period, image, 0.02, "abl-fork")
    freeze = image / 55e6  # the local image write with the process stopped
    sc_time, sc_run = _ft_run(profile, app, p, "pcl", "ft_sock",
                              scaled_period, image, freeze, "abl-stopcopy")
    fork_waves = max(1, fork_run.stats.waves_completed)
    sc_waves = max(1, sc_run.stats.waves_completed)
    base_time, _ = _ft_run(profile, app, p, None, "ft_sock", 1.0, image,
                           0.02, "abl-base")
    fork_per_wave = (fork_time - base_time) / fork_waves
    sc_per_wave = (sc_time - base_time) / sc_waves
    series.append(Series("fork vs stop-and-copy [s/wave]", [0.0, 1.0],
                         [fork_per_wave, sc_per_wave],
                         meta={"x": "0=fork, 1=stop-and-copy"}))
    checks["fork beats stop-and-copy (per-wave overhead)"] = (
        fork_per_wave < sc_per_wave
    )
    notes.append(
        f"fork: {fork_per_wave:.2f}s/wave vs stop-and-copy "
        f"{sc_per_wave:.2f}s/wave (freeze {freeze:.2f}s)"
    )

    # 4. Vcl logging volume vs wave frequency (bursty 1 MB traffic keeps
    # messages in flight at every instant, so every wave logs something)
    traffic = burst(iters=120, nbytes=1_000_000, fan=3, compute=0.01)
    logged: List[float] = []
    wave_counts: List[float] = []
    freq_periods = [5.0, 20.0, 80.0]
    for pp in freq_periods:
        _t, log_run = _ft_run(profile, traffic, 8, "vcl", "ch_v",
                              profile.scaled_period(pp), 8e6, 0.02,
                              f"abl-log-{pp:g}")
        logged.append(log_run.stats.logged_bytes / 1e3)
        wave_counts.append(float(log_run.stats.waves_completed))
    series.append(Series("vcl logged KB (total)", freq_periods, logged))
    series.append(Series("vcl waves", freq_periods, wave_counts))
    checks["vcl logs in-transit data under bursty traffic"] = max(logged) > 0
    checks["higher wave frequency logs at least as much"] = (
        logged[0] >= logged[-1]
    )

    return FigureResult(
        figure_id="ablations",
        title="Design-choice ablations",
        x_label="variant",
        y_label="seconds / KB (per series)",
        series=series,
        checks=checks,
        notes=notes,
        profile=profile.name,
    )
