"""Replication ablation — checkpoint time vs ranks at K = 1, 2, 3.

A Fig. 5-style study of the resilient storage layer: BT class B under the
blocking protocol (Pcl, where the checkpoint time is directly visible as
wave duration), sweeping the process count at storage replication factors
K = 1, 2 and 3 against a fixed pool of checkpoint servers.

Expected shape: each extra replica streams the same image to one more
server over the same NICs, so the mean wave duration grows with K at every
process count — durability is bought with checkpoint bandwidth, never for
free.  Completion time grows accordingly (Pcl blocks during transfers).
The failure-free application result is identical at every K: replication
only changes where images land, not the protocol's cut.
"""

from __future__ import annotations

from repro.apps import BT
from repro.harness.config import Profile
from repro.harness.report import FigureResult, Series
from repro.harness.runner import execute

__all__ = ["run"]


def run(profile: Profile) -> FigureResult:
    bench = BT(klass="B", scale=profile.time_scale)
    sizes = list(profile.repl_procs)
    factors = list(profile.repl_factors)
    results = {
        k: [
            execute(
                bench, p, "pcl", profile,
                n_servers=profile.repl_servers,
                ckpt_replication=k,
                period=profile.repl_period,
                procs_per_node=2,
                name=f"replication-K{k}-p{p}",
            )
            for p in sizes
        ]
        for k in factors
    }

    def mean_wave(result):
        durations = result.stats.wave_durations()
        return sum(durations) / len(durations) if durations else 0.0

    wave_times = {k: [mean_wave(r) for r in results[k]] for k in factors}
    completions = {k: [r.completion for r in results[k]] for k in factors}

    base = factors[0]
    checks = {
        "every run completed at least one wave": all(
            r.waves >= 1 for runs in results.values() for r in runs
        ),
        # At tiny rank counts the K=1 round-robin and K>=2 ring placements
        # quantize the per-server load differently, so adjacent factors can
        # cross by a percent or two; the claim that holds at every scale is
        # K=1 -> K=max, plus strict monotonicity once ranks outnumber the
        # server pool.
        "wave duration grows from K=1 to K=max at every size": all(
            wave_times[factors[-1]][i] > wave_times[base][i]
            for i in range(len(sizes))
        ),
        "wave duration grows with K at the largest size": all(
            wave_times[factors[j + 1]][-1] > wave_times[factors[j]][-1]
            for j in range(len(factors) - 1)
        ),
        "completion time grows with K at every size": all(
            completions[k][i] >= completions[base][i]
            for k in factors[1:]
            for i in range(len(sizes))
        ),
        "replication never changes the failure-free result": all(
            results[k][i].meta["app_state"] == results[base][i].meta["app_state"]
            for k in factors[1:]
            for i in range(len(sizes))
        ),
    }
    series = [
        Series(f"K={k} wave time [s]", sizes, wave_times[k]) for k in factors
    ] + [
        Series(f"K={k} completion [s]", sizes, completions[k]) for k in factors
    ]
    return FigureResult(
        figure_id="replication",
        title="Checkpoint time vs ranks at replication K="
              f"{factors} (BT.B, Pcl, {profile.repl_servers} servers, "
              f"period {profile.repl_period}s)",
        x_label="n_procs",
        y_label="mean wave duration [s] / completion time [s]",
        series=series,
        checks=checks,
        notes=[
            "each extra replica re-streams the image to another server: "
            "durability costs checkpoint bandwidth",
            f"fixed pool of {profile.repl_servers} checkpoint servers; "
            "ring replica placement (assign_replicas)",
        ],
        profile=profile.name,
    )
