"""MTTF experiment — checkpoint frequency vs failure rate (extension).

The paper's conclusion sketches two follow-ups this experiment implements:

1. "Evaluating the MTTF of the system can significantly improve
   performances, since the best value for the checkpoint wave frequency is
   close to the MTTF" — we sweep the checkpoint period under Poisson task
   failures (averaged over several independent failure schedules) and
   compare the simulated optimum against the Young/Daly first-order
   predictions, with the per-wave cost measured from failure-free runs.
2. "Components detecting an increasing failure probability (e.g. through
   their CPU temperature probe) should also trigger a checkpoint wave" — a
   probe with a few seconds of warning requests an immediate wave before
   each failure; with a long base period this proactive mode should beat
   the same long period without the probe.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.synthetic import burst
from repro.ft.interval import IntervalModel
from repro.harness.config import Profile
from repro.harness.report import FigureResult, Series
from repro.runtime import DeploymentSpec, build_run
from repro.sim import Simulator

__all__ = ["run"]

_N_PROCS = 8
_MTTF = 12.0
_IMAGE_BYTES = 8e6
_PERIODS = (0.3, 1.0, 3.0, 9.0, 27.0)
_PROBE_LEAD = 2.5
_WORK_ITERS = 140
_WORK_STEP = 0.25


def _one_run(seed: int, period: Optional[float], mttf: Optional[float],
             probe_lead: Optional[float] = None):
    sim = Simulator(seed=seed)
    app = burst(iters=_WORK_ITERS, nbytes=100_000, fan=3, compute=_WORK_STEP)
    spec = DeploymentSpec(
        n_procs=_N_PROCS, protocol="pcl" if period else None,
        channel="ft_sock", network="gige", n_servers=1,
        period=period if period else 1.0, image_bytes=_IMAGE_BYTES,
        procs_per_node=1, fork_latency=0.02, launcher="instant",
    )
    run = build_run(sim, spec, app, name=f"mttf-s{seed}-{period}")
    run.max_restarts = 64
    run.start()
    if mttf is not None:
        run.enable_random_failures(mttf, max_failures=40,
                                   probe_lead=probe_lead)
    completion = sim.run_until_complete(run.completed, limit=1e6)
    return completion, run


def run(profile: Profile) -> FigureResult:
    seeds = [profile.seed + i for i in range(1, 5)]

    # --- measure the per-wave application cost from failure-free runs ----
    base_time, _ = _one_run(profile.seed, None, None)
    busy_time, busy_run = _one_run(profile.seed, 1.0, None)
    waves = max(1, busy_run.stats.waves_completed)
    wave_cost = max(1e-3, (busy_time - base_time) / waves)

    # --- period sweep under Poisson failures -----------------------------
    completions: List[float] = []
    failure_counts: List[float] = []
    for period in _PERIODS:
        times, fails = [], []
        for seed in seeds:
            completion, ft_run = _one_run(seed, period, _MTTF)
            times.append(completion)
            fails.append(ft_run.stats.failures)
        completions.append(sum(times) / len(times))
        failure_counts.append(sum(fails) / len(fails))

    # --- proactive probe vs plain long period ----------------------------
    plain_long = completions[-1]
    proactive_times = [
        _one_run(seed, _PERIODS[-1], _MTTF, probe_lead=_PROBE_LEAD)[0]
        for seed in seeds
    ]
    proactive_time = sum(proactive_times) / len(proactive_times)

    model = IntervalModel(work=base_time, checkpoint_cost=wave_cost,
                          restart_cost=1.0, mttf=_MTTF)
    daly = model.daly()
    best_index = completions.index(min(completions))
    best_period = _PERIODS[best_index]

    checks = {
        "checkpointing too rarely loses (right arm of the U)":
            completions[-1] > min(completions) * 1.02,
        "simulated optimum within 10x of the Daly prediction":
            0.1 <= best_period / daly <= 10.0,
        "optimum not at the longest period":
            best_index < len(_PERIODS) - 1,
        "proactive probe beats the same long period without it":
            proactive_time < plain_long,
        "failures happened in every configuration":
            all(f >= 1 for f in failure_counts),
        "any checkpointing beats none under failures": min(completions) < (
            sum(_one_run(seed, None, _MTTF)[0] for seed in seeds) / len(seeds)
        ),
    }
    return FigureResult(
        figure_id="mttf",
        title=f"Checkpoint period vs MTTF (Poisson failures, MTTF={_MTTF:g}s,"
              " blocking protocol, mean of 4 schedules)",
        x_label="period [s]",
        y_label="completion time [s]",
        series=[
            Series("completion [s]", list(_PERIODS), completions),
            Series("mean failures", list(_PERIODS), failure_counts),
            Series(f"proactive lead={_PROBE_LEAD:g}s [s]",
                   [_PERIODS[-1]], [proactive_time]),
        ],
        checks=checks,
        notes=[
            f"measured wave cost {wave_cost:.3f}s -> Young "
            f"{model.young():.2f}s, Daly {daly:.2f}s; simulated best "
            f"{best_period:g}s",
            f"proactive: {proactive_time:.1f}s vs plain long-period "
            f"{plain_long:.1f}s",
            f"failure-free baseline {base_time:.1f}s",
        ],
        profile=profile.name,
    )
