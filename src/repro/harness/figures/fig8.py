"""Figure 8 — blocking checkpointing vs system size on Myrinet.

Paper setup: CG class C with 4 to 64 processes on the same 32-node Myrinet
cluster, Pcl over Nemesis/GM only (the best implementation for this
platform), completion time against the number of completed waves.

Expected shape (Sec. 5.3):

* every curve shows a slowdown proportional to the number of waves;
* all sizes have approximately the same slope — "the impact of taking
  checkpoints is not particularly sensitive to the number of processes",
  i.e. Pcl scales well on high-performance networks;
* the 32- and 64-process deployments nearly coincide: with two processes
  per node CG becomes I/O-bound on the shared NIC.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.apps import CG
from repro.harness.config import Profile
from repro.harness.parallel import execute_grid
from repro.harness.report import FigureResult, Series
from repro.tools import linear_fit

__all__ = ["run"]


def run(profile: Profile) -> FigureResult:
    bench = CG(klass="C", scale=profile.time_scale)
    nodes = profile.fig8_nodes

    tasks = []
    for p in profile.fig8_procs:
        per_node = 2 if p > nodes else 1
        deploy = dict(network="myrinet", channel="nemesis",
                      procs_per_node=per_node,
                      n_compute_nodes=min(nodes, -(-p // per_node)),
                      n_servers=2)
        tasks.append(dict(bench=bench, n_procs=p, protocol=None,
                          profile=profile, name=f"fig8-p{p}-base", **deploy))
        for period in profile.fig8_periods:
            tasks.append(dict(bench=bench, n_procs=p, protocol="pcl",
                              profile=profile, period=period,
                              name=f"fig8-p{p}-t{period}", **deploy))
    grid = iter(execute_grid(tasks))

    series: List[Series] = []
    fits = {}
    finals: Dict[int, float] = {}
    for p in profile.fig8_procs:
        baseline = next(grid)
        pts: List[Tuple[int, float]] = [(0, baseline.completion)]
        for _period in profile.fig8_periods:
            result = next(grid)
            pts.append((result.waves, result.completion))
        pts.sort()
        xs = [float(w) for w, _t in pts]
        ys = [t for _w, t in pts]
        series.append(Series(f"p={p}", xs, ys))
        if len(set(xs)) >= 2:
            fits[p] = linear_fit(xs, ys)
        finals[p] = baseline.completion

    slopes = [fit.slope for fit in fits.values()]
    checks = {
        "every size slows down with more waves (all slopes > 0)":
            all(slope > 0 for slope in slopes),
        "slopes similar across sizes (max < 4x min)":
            max(slopes) < 4 * max(min(slopes), 1e-9),
    }
    if 32 in finals and 64 in finals:
        checks["32- and 64-process runs nearly coincide (shared NIC)"] = (
            abs(finals[64] - finals[32]) / finals[32] < 0.35
        )
    return FigureResult(
        figure_id="fig8",
        title="Pcl/Nemesis: completion time vs waves at several sizes "
              "(CG.C, Myrinet)",
        x_label="completed waves",
        y_label="completion time [s]",
        series=series,
        checks=checks,
        notes=[
            f"slopes [s/wave]: " + ", ".join(
                f"p={p}: {fit.slope:.2f}" for p, fit in sorted(fits.items())),
        ],
        profile=profile.name,
    )
