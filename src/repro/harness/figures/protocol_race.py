"""Protocol race — all three families on one axis (CG, Myrinet).

A Fig. 7-style three-way comparison with one entry per protocol *family*:
Pcl (blocking, channel-flush) over ft-sock, Vcl (non-blocking, message
logging) over ch_v, and Dcl (blocking, message-drain) over ft-sock —
the drain protocol reuses the MPICH2 device Pcl runs on, so the two
blocking families differ only in *how* they empty the network before
forking (gate-and-flush vs counter quiescence).  Completion time is
plotted against the number of completed checkpoint waves, obtained by
sweeping the checkpoint timeout; wave 0 is a checkpoint-free baseline
per channel.

Expected shape:

* both blocking families are *linear in the number of waves* — each wave
  stalls the application for the synchronization plus the image
  transfers;
* Dcl tracks Pcl closely (same channel, same fork cost): draining by
  counters costs about the same as flushing by markers at this scale;
* Vcl is much flatter versus waves but starts from a far higher
  baseline — CG is latency-bound and every message pays the ch_v
  daemon's extra hops and copies.

All runs go through :func:`repro.harness.parallel.execute_grid`, so
``--jobs N`` (or ``REPRO_JOBS``) fans the grid out over a process pool
with byte-identical results.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.apps import CG
from repro.harness.config import Profile
from repro.harness.parallel import execute_grid
from repro.harness.report import FigureResult, Series
from repro.tools import linear_fit

__all__ = ["run", "IMPLEMENTATIONS"]

#: (label, protocol, channel) — one entry per protocol family
IMPLEMENTATIONS = (
    ("pcl", "pcl", "ft_sock"),
    ("vcl", "vcl", "ch_v"),
    ("dcl", "dcl", "ft_sock"),
)


def run(profile: Profile) -> FigureResult:
    bench = CG(klass="C", scale=profile.time_scale)
    p = profile.fig7_procs
    deploy = dict(network="myrinet", procs_per_node=2,
                  n_compute_nodes=-(-p // 2), n_servers=profile.fig7_servers)

    # one checkpoint-free baseline per channel (Pcl and Dcl share ft-sock)
    channels = []
    for _label, _protocol, channel in IMPLEMENTATIONS:
        if channel not in channels:
            channels.append(channel)
    tasks = [
        dict(bench=bench, n_procs=p, protocol=None, profile=profile,
             channel=channel, name=f"race-base-{channel}", **deploy)
        for channel in channels
    ]
    for label, protocol, channel in IMPLEMENTATIONS:
        tasks += [
            dict(bench=bench, n_procs=p, protocol=protocol, profile=profile,
                 channel=channel, period=period,
                 name=f"race-{label}-t{period}", **deploy)
            for period in profile.fig7_periods
        ]
    grid = execute_grid(tasks)

    baselines = dict(zip(channels, grid[:len(channels)]))
    per_impl = len(profile.fig7_periods)
    points: Dict[str, List[Tuple[int, float]]] = {}
    for index, (label, _protocol, channel) in enumerate(IMPLEMENTATIONS):
        start = len(channels) + index * per_impl
        runs = grid[start:start + per_impl]
        points[label] = [(0, baselines[channel].completion)]
        points[label] += [(r.waves, r.completion) for r in runs]

    series = []
    fits = {}
    for label, _protocol, _channel in IMPLEMENTATIONS:
        pts = sorted(points[label])
        xs = [float(w) for w, _t in pts]
        ys = [t for _w, t in pts]
        series.append(Series(label, xs, ys))
        if len(set(xs)) >= 2:
            fits[label] = linear_fit(xs, ys)

    pcl, vcl, dcl = fits["pcl"], fits["vcl"], fits["dcl"]
    blocking_slope = min(pcl.slope, dcl.slope)
    checks = {
        "pcl time linear in waves (slope > 0)": pcl.slope > 0,
        "dcl time linear in waves (slope > 0)": dcl.slope > 0,
        "dcl tracks pcl (same device): slopes within 2x":
            0.5 * pcl.slope < dcl.slope < 2.0 * pcl.slope,
        "blocking families share a baseline (same channel)":
            abs(dcl.intercept - pcl.intercept) < 0.05 * pcl.intercept,
        "vcl much flatter than the blocking families":
            abs(vcl.slope) < 0.60 * blocking_slope,
        "vcl baseline above the blocking families (daemon latency)":
            vcl.intercept > max(pcl.intercept, dcl.intercept),
        "every checkpointed run completed at least one wave":
            all(w >= 1 for label in points
                for w, _t in points[label][1:]),
    }
    notes = [
        "x = completed checkpoint waves (0 = checkpoint-free run)",
        f"pcl: {pcl.slope:.2f}s/wave from {pcl.intercept:.1f}s",
        f"dcl: {dcl.slope:.2f}s/wave from {dcl.intercept:.1f}s",
        f"vcl: {vcl.slope:.2f}s/wave from {vcl.intercept:.1f}s",
    ]
    return FigureResult(
        figure_id="protocol_race",
        title=f"Three protocol families: completion vs waves "
              f"(CG.C, {p} procs, Myrinet)",
        x_label="completed waves",
        y_label="completion time [s]",
        series=series,
        checks=checks,
        notes=notes,
        profile=profile.name,
    )
