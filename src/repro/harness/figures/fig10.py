"""Figure 10 — blocking checkpointing at large scale (grid, BT.B size sweep).

Paper setup: BT class B over the Grid'5000 slice at growing process counts
(up to 529), Pcl with a 60 s period against a checkpoint-free execution;
the wave count of each checkpointed run is reported alongside.

Expected shape (Sec. 5.4): BT.B is not scalable on a grid — the
checkpoint-free execution slows down at the largest size because remote
(WAN-separated) processors join — and the longer execution gives the
checkpointed run time for more waves, whose linear cost widens the gap.
"""

from __future__ import annotations

from typing import List

from repro.apps import BT
from repro.harness.config import Profile
from repro.harness.report import FigureResult, Series
from repro.harness.runner import execute

__all__ = ["run"]


def run(profile: Profile) -> FigureResult:
    bench = BT(klass="B", scale=profile.time_scale)
    sizes = list(profile.fig10_sizes)

    base_times: List[float] = []
    ckpt_times: List[float] = []
    waves: List[float] = []
    for p in sizes:
        baseline = execute(bench, p, None, profile, network="grid5000",
                           n_servers=profile.fig10_servers,
                           name=f"fig10-base-p{p}")
        result = execute(bench, p, "pcl", profile, network="grid5000",
                         n_servers=profile.fig10_servers,
                         period=profile.fig10_period,
                         name=f"fig10-ckpt-p{p}")
        base_times.append(baseline.completion)
        ckpt_times.append(result.completion)
        waves.append(float(result.waves))

    largest = len(sizes) - 1
    checks = {
        "checkpointed run slower than no-ckpt at every size": all(
            c > b for c, b in zip(ckpt_times, base_times)
        ),
        "every checkpointed run completed at least one wave":
            all(w >= 1 for w in waves),
        "longer executions accumulate at least as many waves":
            waves[largest] >= min(waves),
    }
    if sizes[largest] > 96:
        # smaller sweeps fit inside one site and never touch the WAN, so
        # the paper's heterogeneity slowdown cannot appear
        checks["grid slowdown at the largest size (no-ckpt stops scaling)"] = (
            base_times[largest] * sizes[largest] >
            base_times[largest - 1] * sizes[largest - 1]
        )
    return FigureResult(
        figure_id="fig10",
        title="Large-scale blocking checkpointing (BT.B on Grid'5000, "
              f"period {profile.fig10_period:g}s vs none)",
        x_label="processes",
        y_label="completion time [s] / waves",
        series=[
            Series("no-ckpt [s]", sizes, base_times),
            Series(f"pcl@{profile.fig10_period:g}s [s]", sizes, ckpt_times),
            Series("waves", sizes, waves),
        ],
        checks=checks,
        notes=["grid sites fill in order; the largest sizes span WAN links"],
        profile=profile.name,
    )
