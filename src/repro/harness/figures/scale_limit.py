"""Scale-limit experiment — why the grid runs are Pcl-only (Sec. 5.4).

"The Vcl implementation was not designed for this scale, because it uses
the select system call to multiplex its communication channels ... Each node
of the Vcl implementation opens up to 3 sockets with the dispatcher ... and
this precludes tests with more than 300 processes.  By contrast, Pcl was
designed to scale to large platforms."

This experiment sweeps process counts through both launchers' validators and
runs a small end-to-end confirmation either side of the wall.
"""

from __future__ import annotations

from repro.apps import BT
from repro.harness.config import Profile
from repro.harness.report import FigureResult, Series
from repro.harness.runner import execute
from repro.runtime import Dispatcher, FTPM, ScaleLimitError

__all__ = ["run"]

_SIZES = (64, 144, 256, 324, 400, 529, 1024)


def run(profile: Profile) -> FigureResult:
    dispatcher, ftpm = Dispatcher(), FTPM()

    def admits(launcher, n: int) -> float:
        try:
            launcher.validate(n)
            return 1.0
        except ScaleLimitError:
            return 0.0

    vcl_ok = [admits(dispatcher, n) for n in _SIZES]
    pcl_ok = [admits(ftpm, n) for n in _SIZES]

    # end-to-end confirmation just beyond the wall: Pcl must actually run
    # a job the dispatcher refuses
    beyond = next(n for n, ok in zip(_SIZES, vcl_ok) if not ok)
    bench = BT(klass="A", scale=min(profile.time_scale, 0.05))
    p = 361 if beyond <= 361 else beyond  # keep it a perfect square for BT
    pcl_run = execute(bench, p, "pcl", profile, period=1e6,
                      procs_per_node=2, launcher="ftpm",
                      name="scale-limit-pcl")

    checks = {
        "dispatcher admits the paper's <=256-process Vcl runs":
            all(ok for n, ok in zip(_SIZES, vcl_ok) if n <= 256),
        "dispatcher refuses >300 processes (select() wall)":
            all(not ok for n, ok in zip(_SIZES, vcl_ok) if n > 340),
        "ftpm admits every tested size up to 1024": all(pcl_ok),
        f"pcl actually runs at {p} processes":
            pcl_run.completion > 0,
        "the wall sits near 1024/3 processes":
            300 <= dispatcher.max_processes() <= 341,
    }
    return FigureResult(
        figure_id="scale_limit",
        title="Runtime scalability wall: MPICH-V dispatcher vs FTPM",
        x_label="processes",
        y_label="admitted (1) / refused (0)",
        series=[
            Series("vcl dispatcher", [float(n) for n in _SIZES], vcl_ok),
            Series("pcl ftpm", [float(n) for n in _SIZES], pcl_ok),
        ],
        checks=checks,
        notes=[
            f"dispatcher limit: {dispatcher.max_processes()} processes "
            "(1024-descriptor select() set, 3 sockets/process)",
            f"end-to-end Pcl run at {p} processes completed in "
            f"{pcl_run.completion:.1f}s",
        ],
        profile=profile.name,
    )
