"""Scale-limit experiment — why the grid runs are Pcl-only (Sec. 5.4).

"The Vcl implementation was not designed for this scale, because it uses
the select system call to multiplex its communication channels ... Each node
of the Vcl implementation opens up to 3 sockets with the dispatcher ... and
this precludes tests with more than 300 processes.  By contrast, Pcl was
designed to scale to large platforms."

This experiment sweeps process counts through both launchers' validators and
runs a small end-to-end confirmation either side of the wall.

Beyond the paper's sweep, non-smoke profiles extend the figure to the FTPM
ceiling: the validator sweep continues through 10,000 processes and an
actual 10,000-rank token-ring wave is launched and run end to end
(``_extended_confirmation``).  The smoke profile keeps the original seven
sizes so the committed ``results/scale_limit_smoke.json`` golden stays
byte-identical.
"""

from __future__ import annotations

from repro.apps import BT
from repro.harness.config import Profile
from repro.harness.report import FigureResult, Series
from repro.harness.runner import execute
from repro.runtime import Dispatcher, FTPM, ScaleLimitError

__all__ = ["run"]

_SIZES = (64, 144, 256, 324, 400, 529, 1024)

#: the 10k-rank extension (non-smoke profiles): validator sweep up to and
#: past the FTPM ceiling, plus one end-to-end run at the ceiling itself
_EXTENDED_SIZES = (2048, 4096, 10_000, 10_001)
_CEILING = 10_000


def _extended_confirmation() -> int:
    """Launch and run a 10,000-rank token-ring wave; events processed.

    Uses the same machinery as the ``scale_10k`` perf workload (FTPM
    launch, connection fan-out, one ring round) — the point is that the
    runtime actually *runs* at the ceiling, not merely that the validator
    admits it.
    """
    from repro.apps.synthetic import token_ring
    from repro.runtime import DeploymentSpec, build_run
    from repro.sim import make_simulator

    sim = make_simulator(seed=13)
    spec = DeploymentSpec(n_procs=_CEILING, protocol=None, launcher="ftpm",
                          procs_per_node=2, n_compute_nodes=_CEILING // 2)
    run = build_run(sim, spec, token_ring(rounds=1), name="scale-limit-10k")
    run.start()
    sim.run_until_complete(run.completed, limit=1e8)
    return sim.events_processed


def run(profile: Profile) -> FigureResult:
    dispatcher, ftpm = Dispatcher(), FTPM()
    extended = profile.name != "smoke"
    sizes = _SIZES + _EXTENDED_SIZES if extended else _SIZES

    def admits(launcher, n: int) -> float:
        try:
            launcher.validate(n)
            return 1.0
        except ScaleLimitError:
            return 0.0

    vcl_ok = [admits(dispatcher, n) for n in sizes]
    pcl_ok = [admits(ftpm, n) for n in sizes]

    # end-to-end confirmation just beyond the wall: Pcl must actually run
    # a job the dispatcher refuses
    beyond = next(n for n, ok in zip(sizes, vcl_ok) if not ok)
    bench = BT(klass="A", scale=min(profile.time_scale, 0.05))
    p = 361 if beyond <= 361 else beyond  # keep it a perfect square for BT
    pcl_run = execute(bench, p, "pcl", profile, period=1e6,
                      procs_per_node=2, launcher="ftpm",
                      name="scale-limit-pcl")

    checks = {
        "dispatcher admits the paper's <=256-process Vcl runs":
            all(ok for n, ok in zip(sizes, vcl_ok) if n <= 256),
        "dispatcher refuses >300 processes (select() wall)":
            all(not ok for n, ok in zip(sizes, vcl_ok) if n > 340),
        "ftpm admits every tested size up to 1024":
            all(ok for n, ok in zip(sizes, pcl_ok) if n <= 1024),
        f"pcl actually runs at {p} processes":
            pcl_run.completion > 0,
        "the wall sits near 1024/3 processes":
            300 <= dispatcher.max_processes() <= 341,
    }
    notes = [
        f"dispatcher limit: {dispatcher.max_processes()} processes "
        "(1024-descriptor select() set, 3 sockets/process)",
        f"end-to-end Pcl run at {p} processes completed in "
        f"{pcl_run.completion:.1f}s",
    ]
    if extended:
        checks["ftpm admits every size up to its 10000 ceiling"] = \
            all(ok for n, ok in zip(sizes, pcl_ok) if n <= _CEILING)
        checks["ftpm refuses beyond the 10000 ceiling"] = \
            all(not ok for n, ok in zip(sizes, pcl_ok) if n > _CEILING)
        wave_events = _extended_confirmation()
        checks[f"ftpm actually runs a {_CEILING}-rank wave"] = \
            wave_events > _CEILING
        notes.append(
            f"end-to-end {_CEILING}-rank token-ring wave processed "
            f"{wave_events} events"
        )
    return FigureResult(
        figure_id="scale_limit",
        title="Runtime scalability wall: MPICH-V dispatcher vs FTPM",
        x_label="processes",
        y_label="admitted (1) / refused (0)",
        series=[
            Series("vcl dispatcher", [float(n) for n in sizes], vcl_ok),
            Series("pcl ftpm", [float(n) for n in sizes], pcl_ok),
        ],
        checks=checks,
        notes=notes,
        profile=profile.name,
    )
