"""Figure 7 — checkpoint waves on a high-speed network (CG.C, 64 procs).

Paper setup: CG class C on 32 Myrinet-2000 nodes (64 processes, two per
node), 2 checkpoint servers.  Three implementations: Pcl over the ft-sock
channel (Ethernet emulation on the Myrinet cards), Pcl over Nemesis/GM
(native Myrinet), and Vcl (ch_v daemons over the Ethernet emulation).
Completion time is plotted against the number of completed checkpoint waves,
obtained by sweeping the checkpoint timeout.

Expected shape (Sec. 5.3):

* both Pcl variants are *linear in the number of waves* (synchronization
  cost per wave);
* Vcl is flat versus waves but starts from a much higher baseline: CG is
  latency-bound and every message pays the daemon's two extra Unix-socket
  hops and copies;
* Pcl/Nemesis is the fastest; Vcl only wins against it at very high wave
  frequency (the paper: a wave every ~15 s or less).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.apps import CG
from repro.harness.config import Profile
from repro.harness.report import FigureResult, Series
from repro.harness.runner import execute
from repro.tools import linear_fit

__all__ = ["run", "IMPLEMENTATIONS"]

#: (label, protocol, channel) — fabric follows the channel on Myrinet
IMPLEMENTATIONS = (
    ("pcl-socket", "pcl", "ft_sock"),
    ("pcl-nemesis", "pcl", "nemesis"),
    ("vcl", "vcl", "ch_v"),
)


def run(profile: Profile) -> FigureResult:
    bench = CG(klass="C", scale=profile.time_scale)
    p = profile.fig7_procs
    deploy = dict(network="myrinet", procs_per_node=2,
                  n_compute_nodes=-(-p // 2), n_servers=profile.fig7_servers)

    points: Dict[str, List[Tuple[int, float]]] = {}
    for label, protocol, channel in IMPLEMENTATIONS:
        baseline = execute(bench, p, None, profile, channel=channel,
                           name=f"fig7-{label}-base", **deploy)
        points[label] = [(0, baseline.completion)]
        for period in profile.fig7_periods:
            result = execute(bench, p, protocol, profile, channel=channel,
                             period=period, name=f"fig7-{label}-t{period}",
                             **deploy)
            points[label].append((result.waves, result.completion))

    series = []
    fits = {}
    for label, _protocol, _channel in IMPLEMENTATIONS:
        pts = sorted(points[label])
        xs = [float(w) for w, _t in pts]
        ys = [t for _w, t in pts]
        series.append(Series(label, xs, ys))
        if len(set(xs)) >= 2:
            fits[label] = linear_fit(xs, ys)

    nemesis = fits["pcl-nemesis"]
    socket = fits["pcl-socket"]
    vcl = fits["vcl"]
    # does Vcl actually overtake Pcl/Nemesis within the measured range?
    max_common_waves = min(max(s.xs) for s in series)
    checks = {
        "pcl-nemesis time linear in waves (r2 > 0.85, slope > 0)":
            nemesis.r2 > 0.85 and nemesis.slope > 0,
        "pcl-socket time linear in waves (slope > 0)": socket.slope > 0,
        "vcl much flatter than pcl (slope < 60% of pcl-nemesis)":
            abs(vcl.slope) < 0.60 * nemesis.slope,
        # the daemon penalty grows with the process-grid width (more dot-
        # product rounds per step); demand the full margin only at the
        # paper's 64 processes
        "vcl baseline above pcl-nemesis (daemon latency)":
            vcl.intercept > (1.03 if p >= 64 else 1.005) * nemesis.intercept,
        "pcl-nemesis beats pcl-socket without checkpoints":
            nemesis.intercept < socket.intercept,
        "vcl wins only at high wave frequency (crossover exists)":
            vcl.predict(0) > nemesis.predict(0)
            and vcl.predict(max(6.0, max_common_waves))
            < nemesis.predict(max(6.0, max_common_waves)),
    }
    # where would Vcl start to win against Pcl/Nemesis?
    notes = [
        "x = completed checkpoint waves (0 = checkpoint-free run)",
        f"pcl-nemesis: {nemesis.slope:.2f}s/wave from {nemesis.intercept:.1f}s",
        f"pcl-socket:  {socket.slope:.2f}s/wave from {socket.intercept:.1f}s",
        f"vcl:         {vcl.slope:.2f}s/wave from {vcl.intercept:.1f}s",
    ]
    if nemesis.slope > vcl.slope:
        crossover = (vcl.intercept - nemesis.intercept) / (nemesis.slope - vcl.slope)
        notes.append(
            f"vcl overtakes pcl-nemesis beyond ~{crossover:.1f} waves "
            "(the paper: only at waves every ~15s or less)"
        )
    return FigureResult(
        figure_id="fig7",
        title=f"Completion time vs checkpoint waves (CG.C, {p} procs, Myrinet)",
        x_label="completed waves",
        y_label="completion time [s]",
        series=series,
        checks=checks,
        notes=notes,
        profile=profile.name,
    )
