"""Generate EXPERIMENTS.md from saved harness results.

Usage::

    python -m repro.harness.experiments_md [--results results] [--out EXPERIMENTS.md]

For every experiment it pairs the paper's claim (the static registry below)
with the measured series and the PASS/FAIL state of each shape check, so the
document is always regenerated from data rather than hand-edited.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
from typing import Dict, List

__all__ = ["PAPER_CLAIMS", "build_markdown", "main"]

#: experiment id -> (paper reference, the paper's qualitative claim)
PAPER_CLAIMS: Dict[str, tuple] = {
    "fig5": (
        "Fig. 5 (Sec. 5.2)",
        "BT.B/64, 30s period, 1-8 checkpoint servers: Pcl's completion time "
        "decreases as servers are added (checkpoint transfers compete with "
        "the application for bandwidth); Vcl's stays almost constant while "
        "its number of completed waves increases.",
    ),
    "fig6": (
        "Fig. 6 (Sec. 5.2)",
        "BT.B at 16-256 processes, periods 10-120s, 9 servers: at 10s the "
        "blocking protocol degrades heavily; at longer periods both "
        "protocols cost a small constant overhead; process count has no "
        "measurable impact on the overhead; a dip appears past 144 "
        "processes when two processes share a NIC.",
    ),
    "fig7": (
        "Fig. 7 (Sec. 5.3)",
        "CG.C/64 on Myrinet: both Pcl variants are linear in the number of "
        "waves; Vcl is flat versus waves but starts much higher (daemon "
        "latency on a latency-bound benchmark); Pcl/Nemesis is best and "
        "Vcl only wins at very frequent waves (~every 15s).",
    ),
    "fig8": (
        "Fig. 8 (Sec. 5.3)",
        "CG.C at 4-64 processes, Pcl/Nemesis: every size slows down "
        "proportionally to the wave count with approximately the same "
        "slope; the 32- and 64-process runs coincide (NIC sharing).",
    ),
    "fig9": (
        "Fig. 9 (Sec. 5.4)",
        "BT.B/400 on Grid'5000: completion time is linear in the number of "
        "completed waves; the wave count is proportional to the checkpoint "
        "frequency.",
    ),
    "fig10": (
        "Fig. 10 (Sec. 5.4)",
        "BT.B on Grid'5000 at growing sizes, 60s period vs none: the "
        "checkpoint-free run stops scaling at the largest size (remote "
        "clusters join), giving the checkpointed run time for more waves.",
    ),
    "netpipe": (
        "Sec. 5.4 (NetPIPE)",
        "The intra-cluster network is up to 20x faster in bandwidth and "
        "about two orders of magnitude lower latency than inter-cluster "
        "links.",
    ),
    "scale_limit": (
        "Sec. 5.4 (deployment)",
        "Vcl's dispatcher multiplexes with select() (fd set of 1024, 3 "
        "sockets per process) and cannot run beyond ~300 processes; Pcl's "
        "FTPM was designed for large platforms (runs up to 1024).",
    ),
    "ablations": (
        "Secs. 4.1/4.2/6 (design discussion)",
        "The daemon architecture (not the protocol) carries Vcl's latency "
        "cost; the Nemesis stopper request and per-channel gating are "
        "equivalent blocking mechanisms; fork-based checkpointing beats "
        "stop-and-copy; non-blocking waves pay with logged in-transit data.",
    ),
    "mttf": (
        "Sec. 6 (conclusion, extension)",
        "The best checkpoint frequency tracks the system MTTF "
        "(Young/Daly), and probes that see failures coming should trigger "
        "proactive waves.",
    ),
    "replication": (
        "Sec. 5.2 (Fig. 5-style, extension)",
        "Checkpoint transfers compete with the application for NIC "
        "bandwidth, so replicating every image/log to K servers for "
        "durability re-streams the same bytes K times: the blocking "
        "protocol's wave duration and completion time grow with K at "
        "every process count, while the failure-free application result "
        "is unchanged.",
    ),
    "protocol_race": (
        "Fig. 7 (Sec. 5.3, extension)",
        "Re-asking the paper's question against a third family: a "
        "message-drain protocol (Dcl) that blocks by counter-proven "
        "network quiescence is linear in the number of waves like Pcl "
        "(both blocking families share a failure-free baseline on the "
        "same channel), while Vcl stays flat versus waves but starts "
        "higher — the blocking/non-blocking trade-off is a property of "
        "the family, not of the flush mechanism.",
    ),
    "recovery": (
        "Secs. 2/5.4 (restart model, extension)",
        "The paper's recovery model re-deploys every rank after any "
        "failure, so recovery cost is the full job-launch path the "
        "deployment section measured at hundreds of processes.  "
        "ULFM-style survivor recovery changes that: promoting a warm "
        "spare or shrinking to the survivors skips the respawn entirely, "
        "only the replacement (or nobody) streams an image, and the "
        "cost stays flat as concurrent failures grow because one "
        "membership agreement round absorbs a whole failure burst.",
    ),
}


def _series_table(series: List[dict]) -> List[str]:
    lines = []
    xs: List[float] = []
    for entry in series:
        for x in entry["xs"]:
            if x not in xs:
                xs.append(x)
    xs.sort()
    header = "| x | " + " | ".join(entry["label"] for entry in series) + " |"
    rule = "|---" * (len(series) + 1) + "|"
    lines.append(header)
    lines.append(rule)
    for x in xs:
        row = [f"{x:g}"]
        for entry in series:
            try:
                index = entry["xs"].index(x)
                value = entry["ys"][index]
                row.append(f"{value:.3f}" if isinstance(value, float) else str(value))
            except ValueError:
                row.append("-")
        lines.append("| " + " | ".join(row) + " |")
    return lines


def build_markdown(results_dir: str) -> str:
    paths = sorted(glob.glob(os.path.join(results_dir, "*.json")))
    by_id: Dict[str, dict] = {}
    for path in paths:
        with open(path) as handle:
            data = json.load(handle)
        # prefer quick over smoke, paper over quick
        rank = {"smoke": 0, "quick": 1, "paper": 2}.get(data.get("profile"), 0)
        current = by_id.get(data["figure"])
        if current is None or rank >= current[0]:
            by_id[data["figure"]] = (rank, data)

    lines: List[str] = []
    lines.append("# EXPERIMENTS — paper vs. measured")
    lines.append("")
    lines.append("Regenerated with `python -m repro.harness.experiments_md` "
                 "from the JSON files the harness writes under `results/`.")
    lines.append("")
    lines.append("Absolute numbers are *simulated seconds* under the profile "
                 "noted per experiment; the `quick` profile scales iteration "
                 "counts, checkpoint periods and image sizes by one factor "
                 "(0.15), preserving every ratio that shapes a figure. "
                 "The reproduction's contract is the paper's qualitative "
                 "claims, each encoded as an explicit check below.")
    lines.append("")
    lines.append("## Known quantitative deviations")
    lines.append("")
    lines.append("The *shapes* (orderings, linearity, crossovers, scaling "
                 "trends) reproduce; two magnitudes undershoot the paper:")
    lines.append("")
    lines.append("1. **Vcl's latency handicap on CG (Fig. 7)** measures "
                 "+6-8% over Pcl/Nemesis rather than the larger gap the "
                 "paper's crossover implies (~15-25%).  Our daemon model "
                 "charges Unix-socket hops, copies and select() scans; the "
                 "real MPICH-V stack also suffered TCP pathologies "
                 "(Nagle/delayed-ACK interactions) we do not model.  The "
                 "Vcl-overtakes-Pcl crossover still appears, at roughly "
                 "twice the paper's wave frequency.")
    lines.append("2. **Pcl's degradation at the 10s period (Fig. 6)** is "
                 "visible but milder than the paper's. The blocking "
                 "freeze in our model lasts markers + fork; production "
                 "implementations stalled longer (request-queue draining "
                 "and progress-engine coupling beyond our chunk model).")
    lines.append("")

    total_checks = passed_checks = 0
    for experiment_id, (reference, claim) in PAPER_CLAIMS.items():
        lines.append(f"## {experiment_id} — {reference}")
        lines.append("")
        lines.append(f"**Paper:** {claim}")
        lines.append("")
        entry = by_id.get(experiment_id)
        if entry is None:
            lines.append("*(no saved results — run "
                         f"`python -m repro.harness {experiment_id}`)*")
            lines.append("")
            continue
        _rank, data = entry
        lines.append(f"**Measured** (profile `{data['profile']}`): "
                     f"{data['title']}")
        lines.append("")
        lines.extend(_series_table(data["series"]))
        lines.append("")
        for note in data.get("notes", []):
            lines.append(f"- {note}")
        lines.append("")
        lines.append("| shape check | status |")
        lines.append("|---|---|")
        for name, ok in data.get("checks", {}).items():
            total_checks += 1
            passed_checks += bool(ok)
            lines.append(f"| {name} | {'PASS' if ok else 'FAIL'} |")
        lines.append("")
    lines.insert(4, f"**{passed_checks}/{total_checks} shape checks pass.**")
    lines.insert(5, "")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--results", default="results")
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    markdown = build_markdown(args.results)
    with open(args.out, "w") as handle:
        handle.write(markdown)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
