"""Opt-in process-pool execution for run grids.

Every figure is a grid of independent :func:`~repro.harness.runner.execute`
calls (each owns its own :class:`~repro.sim.Simulator`), and every chaos
campaign is a list of independent scenarios — embarrassingly parallel work
that the harness historically ran sequentially.  This module provides the
shared machinery:

* :func:`resolve_jobs` — the worker count from an explicit ``--jobs`` value
  or the ``REPRO_JOBS`` environment variable (default 1: sequential);
* :func:`pool_map` — ordered map over a :class:`ProcessPoolExecutor`,
  falling back to a plain loop when one worker suffices;
* :func:`execute_grid` — run a list of ``execute`` keyword dicts, in spec
  order, re-recording each worker's monitor verdicts into the parent's
  active :func:`~repro.harness.runner.monitor_ledger`.

Determinism contract: results are *identical* to sequential execution.
Each run's simulator is seeded independently and shares no state with its
siblings, and ``pool.map`` returns results in submission order, so the only
thing parallelism changes is wall time.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TypeVar,
)

from repro.harness.runner import (
    RunResult,
    execute,
    record_monitor_verdict,
    record_run_metrics,
)

__all__ = ["resolve_jobs", "pool_imap", "pool_map", "execute_grid"]

T = TypeVar("T")
R = TypeVar("R")

#: environment variable consulted when no explicit job count is given
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective worker count: explicit value, else ``REPRO_JOBS``,
    else 1 (sequential).  Never below 1."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(f"{JOBS_ENV}={raw!r} is not an integer")
    return max(1, jobs or 1)


def pool_imap(fn: Callable[[T], R], items: Iterable[T],
              jobs: Optional[int] = None) -> Iterator[R]:
    """Lazily map ``fn`` over ``items``, yielding results in input order.

    With one job (or one item) this is a plain loop in the calling process
    — no pickling, no subprocesses, byte-identical to the historical
    sequential path.  With more, items are dispatched to a process pool;
    ``fn`` and each item must be picklable (top-level functions and plain
    dataclasses).  Either way results come back in submission order, so
    callers see a deterministic stream regardless of worker scheduling.
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    if jobs <= 1:
        for item in items:
            yield fn(item)
        return
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        yield from pool.map(fn, items)


def pool_map(fn: Callable[[T], R], items: Iterable[T],
             jobs: Optional[int] = None) -> List[R]:
    """Eager :func:`pool_imap`."""
    return list(pool_imap(fn, items, jobs=jobs))


def _execute_task(kwargs: Dict[str, Any]) -> RunResult:
    """Top-level worker: one ``execute`` call (picklable by name)."""
    return execute(**kwargs)


def execute_grid(tasks: Sequence[Dict[str, Any]],
                 jobs: Optional[int] = None) -> List[RunResult]:
    """Run a grid of ``execute`` keyword dicts, results in ``tasks`` order.

    Worker processes have no access to the parent's monitor ledger, so each
    result's verdict (carried in ``RunResult.meta``) is re-recorded here —
    in grid order — making the figure wrappers' ledgers identical whether
    the grid ran sequentially or in a pool.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return [execute(**kwargs) for kwargs in tasks]
    results = pool_map(_execute_task, tasks, jobs=jobs)
    for result in results:
        monitors = result.meta.get("monitors")
        if monitors is not None:
            record_monitor_verdict(result.meta["name"], monitors)
        snapshot = result.meta.get("metrics")
        if snapshot is not None:
            record_run_metrics(result.meta["name"], snapshot)
    return results
